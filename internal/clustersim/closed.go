package clustersim

import (
	"fmt"
	"math"

	"anurand/internal/anu"
	"anurand/internal/metrics"
	"anurand/internal/policy"
	"anurand/internal/rng"
	"anurand/internal/sim"
	"anurand/internal/workload"
)

// ClosedConfig describes a closed-loop simulation: instead of replaying
// an open trace, a fixed population of clients each cycles through
// think -> metadata request -> data transfer -> think, exactly the
// client behaviour of the paper's Figure 1 architecture. Closed-loop
// clients make Section 3's motivation structural: a client stuck in a
// slow metadata queue stops offering load entirely, so metadata
// imbalance throttles whole-cluster throughput rather than just
// stretching latencies.
type ClosedConfig struct {
	// Seed drives think times and file-set choices.
	Seed uint64

	// Speeds gives each server's capacity (ids are indices).
	Speeds []float64

	// Policy places file sets on servers.
	Policy policy.Placer

	// FileSets is the namespace; Weight biases which file set a client
	// touches each cycle.
	FileSets []workload.FileSet

	// Clients is the population size.
	Clients int

	// ThinkTime is the mean think time between cycles (exponential).
	ThinkTime float64

	// MetadataDemand is the metadata service requirement in unit-speed
	// seconds.
	MetadataDemand float64

	// SAN optionally adds the data-transfer phase after metadata.
	SAN SANConfig

	// TuneInterval is the load-placement tuning period.
	TuneInterval float64

	// Duration is the measured run length in seconds.
	Duration float64
}

// Validate reports the first nonsensical parameter.
func (c *ClosedConfig) Validate() error {
	switch {
	case len(c.Speeds) == 0:
		return fmt.Errorf("clustersim: closed: no servers")
	case c.Policy == nil:
		return fmt.Errorf("clustersim: closed: nil policy")
	case len(c.FileSets) == 0:
		return fmt.Errorf("clustersim: closed: no file sets")
	case c.Clients <= 0:
		return fmt.Errorf("clustersim: closed: %d clients", c.Clients)
	case !(c.ThinkTime >= 0) || math.IsInf(c.ThinkTime, 0):
		return fmt.Errorf("clustersim: closed: invalid think time %g", c.ThinkTime)
	case !(c.MetadataDemand > 0):
		return fmt.Errorf("clustersim: closed: invalid metadata demand %g", c.MetadataDemand)
	case !(c.TuneInterval > 0):
		return fmt.Errorf("clustersim: closed: invalid tune interval %g", c.TuneInterval)
	case !(c.Duration > 0):
		return fmt.Errorf("clustersim: closed: invalid duration %g", c.Duration)
	}
	for i, s := range c.Speeds {
		if s <= 0 || math.IsNaN(s) {
			return fmt.Errorf("clustersim: closed: server %d speed %g", i, s)
		}
	}
	return c.SAN.Validate()
}

// ClosedResult is the outcome of a closed-loop run.
type ClosedResult struct {
	// Cycles counts completed client cycles within the run.
	Cycles uint64
	// Throughput is Cycles / Duration.
	Throughput float64
	// MetadataLatency summarizes the metadata phase.
	MetadataLatency metrics.Summary
	// CycleLatency summarizes full request cycles (metadata plus data
	// transfer when the SAN is enabled).
	CycleLatency metrics.Summary
	// SANUtilization is the disks' busy fraction over the run (zero
	// when the SAN is disabled).
	SANUtilization float64
	// TuningRounds counts tuning rounds executed.
	TuningRounds int
}

// RunClosed executes a closed-loop simulation.
func RunClosed(cfg ClosedConfig) (*ClosedResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var eng sim.Engine
	src := rng.New(cfg.Seed)
	thinkSrc := src.Stream("think")
	pickSrc := src.Stream("pick")

	weights := make([]float64, len(cfg.FileSets))
	for i, fs := range cfg.FileSets {
		w := fs.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
	}
	pick := rng.NewCategorical(weights)
	think := rng.NewExponential(1 / math.Max(cfg.ThinkTime, 1e-9))

	type server struct {
		res *sim.Resource
		up  bool
		// interval accumulators for latency reports
		n   uint64
		sum float64
	}
	servers := make([]*server, len(cfg.Speeds))
	for i, speed := range cfg.Speeds {
		servers[i] = &server{res: sim.NewResource(&eng, fmt.Sprintf("server-%d", i), speed), up: true}
	}

	var sanPool *san
	if cfg.SAN.Enabled {
		sanPool = newSAN(&eng, cfg.SAN)
	}

	res := &ClosedResult{}
	var retuneErr error

	route := func(fs int) *server {
		if id := cfg.Policy.Place(fs); id != policy.NoServer {
			if int(id) < len(servers) && servers[id].up {
				return servers[id]
			}
		}
		return servers[fs%len(servers)]
	}

	// Each client is a self-rescheduling cycle.
	var cycle func()
	cycle = func() {
		start := eng.Now()
		fs := pick.Sample(pickSrc)
		s := route(fs)
		s.res.Submit(&sim.Job{
			Demand: cfg.MetadataDemand,
			Done: func(j *sim.Job) {
				mdLatency := eng.Now() - start
				if eng.Now() <= cfg.Duration {
					res.MetadataLatency.Add(mdLatency)
				}
				s.n++
				s.sum += mdLatency
				finish := func() {
					if eng.Now() <= cfg.Duration {
						res.Cycles++
						res.CycleLatency.Add(eng.Now() - start)
					}
					if eng.Now() < cfg.Duration {
						eng.Schedule(think.Sample(thinkSrc), cycle)
					}
				}
				if sanPool == nil {
					finish()
					return
				}
				disk := sanPool.disks[sanPool.family.Hash(fmt.Sprintf("%d/%d", fs, sanPool.seq), 0)%uint64(len(sanPool.disks))]
				sanPool.seq++
				disk.Submit(&sim.Job{Demand: cfg.SAN.TransferDemand, Done: func(*sim.Job) { finish() }})
			},
		})
	}
	for i := 0; i < cfg.Clients; i++ {
		eng.Schedule(think.Sample(thinkSrc)*thinkSrc.Float64(), cycle) // random initial phase
	}

	// Tuning loop: report per-server interval latencies to the policy.
	ticker := eng.NewTicker(cfg.TuneInterval, func() {
		if eng.Now() > cfg.Duration {
			return
		}
		res.TuningRounds++
		env := policy.Env{Now: eng.Now(), FileSetLoads: make([]float64, len(cfg.FileSets))}
		for i, s := range servers {
			env.Servers = append(env.Servers, policy.ServerInfo{ID: policy.ServerID(i), Speed: cfg.Speeds[i], Up: s.up})
			rep := anu.Report{Server: policy.ServerID(i), Requests: s.n}
			if s.n > 0 {
				rep.Latency = s.sum / float64(s.n)
			}
			env.Reports = append(env.Reports, rep)
			s.n, s.sum = 0, 0
		}
		// Closed-loop ground truth for prescient-class policies: the
		// long-run offered load per file set under the pick weights.
		var totalW float64
		for _, w := range weights {
			totalW += w
		}
		offered := float64(cfg.Clients) / math.Max(cfg.ThinkTime, 1e-9) * cfg.MetadataDemand
		for i, w := range weights {
			env.FileSetLoads[i] = offered * w / totalW
		}
		if err := cfg.Policy.Retune(&env); err != nil {
			retuneErr = fmt.Errorf("clustersim: closed retune at t=%.0f: %w", eng.Now(), err)
			eng.Stop()
		}
	})

	// Snapshot SAN busy time exactly at the measurement horizon, before
	// the post-run drain inflates it.
	var busyInWindow float64
	if sanPool != nil {
		eng.ScheduleAt(cfg.Duration, func() {
			for _, d := range sanPool.disks {
				busyInWindow += d.BusyTime()
			}
		})
	}

	eng.Run(cfg.Duration)
	ticker.Stop()
	eng.RunAll()
	if retuneErr != nil {
		return nil, retuneErr
	}

	res.Throughput = float64(res.Cycles) / cfg.Duration
	if sanPool != nil {
		res.SANUtilization = busyInWindow / (float64(len(sanPool.disks)) * cfg.Duration)
	}
	return res, nil
}
