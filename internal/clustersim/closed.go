package clustersim

import (
	"fmt"
	"math"
	"strconv"

	"anurand/internal/anu"
	"anurand/internal/hashx"
	"anurand/internal/metrics"
	"anurand/internal/policy"
	"anurand/internal/rng"
	"anurand/internal/sim"
	"anurand/internal/workload"
)

// ClosedConfig describes a closed-loop simulation: instead of replaying
// an open trace, a fixed population of clients each cycles through
// think -> metadata request -> data transfer -> think, exactly the
// client behaviour of the paper's Figure 1 architecture. Closed-loop
// clients make Section 3's motivation structural: a client stuck in a
// slow metadata queue stops offering load entirely, so metadata
// imbalance throttles whole-cluster throughput rather than just
// stretching latencies.
type ClosedConfig struct {
	// Seed drives think times and file-set choices.
	Seed uint64

	// Speeds gives each server's capacity (ids are indices).
	Speeds []float64

	// Policy places file sets on servers.
	Policy policy.Placer

	// FileSets is the namespace; Weight biases which file set a client
	// touches each cycle.
	FileSets []workload.FileSet

	// Clients is the population size.
	Clients int

	// ThinkTime is the mean think time between cycles (exponential).
	ThinkTime float64

	// MetadataDemand is the metadata service requirement in unit-speed
	// seconds.
	MetadataDemand float64

	// SAN optionally adds the data-transfer phase after metadata.
	SAN SANConfig

	// TuneInterval is the load-placement tuning period.
	TuneInterval float64

	// Duration is the measured run length in seconds.
	Duration float64
}

// Validate reports the first nonsensical parameter.
func (c *ClosedConfig) Validate() error {
	switch {
	case len(c.Speeds) == 0:
		return fmt.Errorf("clustersim: closed: no servers")
	case c.Policy == nil:
		return fmt.Errorf("clustersim: closed: nil policy")
	case len(c.FileSets) == 0:
		return fmt.Errorf("clustersim: closed: no file sets")
	case c.Clients <= 0:
		return fmt.Errorf("clustersim: closed: %d clients", c.Clients)
	case !(c.ThinkTime >= 0) || math.IsInf(c.ThinkTime, 0):
		return fmt.Errorf("clustersim: closed: invalid think time %g", c.ThinkTime)
	case !(c.MetadataDemand > 0):
		return fmt.Errorf("clustersim: closed: invalid metadata demand %g", c.MetadataDemand)
	case !(c.TuneInterval > 0):
		return fmt.Errorf("clustersim: closed: invalid tune interval %g", c.TuneInterval)
	case !(c.Duration > 0):
		return fmt.Errorf("clustersim: closed: invalid duration %g", c.Duration)
	}
	for i, s := range c.Speeds {
		if s <= 0 || math.IsNaN(s) {
			return fmt.Errorf("clustersim: closed: server %d speed %g", i, s)
		}
	}
	return c.SAN.Validate()
}

// ClosedResult is the outcome of a closed-loop run.
type ClosedResult struct {
	// Cycles counts completed client cycles within the run.
	Cycles uint64
	// Throughput is Cycles / Duration.
	Throughput float64
	// MetadataLatency summarizes the metadata phase.
	MetadataLatency metrics.Summary
	// CycleLatency summarizes full request cycles (metadata plus data
	// transfer when the SAN is enabled).
	CycleLatency metrics.Summary
	// SANUtilization is the disks' busy fraction over the run (zero
	// when the SAN is disabled).
	SANUtilization float64
	// TuningRounds counts tuning rounds executed.
	TuningRounds int
}

// closedServer is one server's live state in a closed-loop run.
type closedServer struct {
	res *sim.Resource
	up  bool
	// interval accumulators for latency reports
	n   uint64
	sum float64
}

// closedLoop is the shared harness state of a closed-loop run.
type closedLoop struct {
	cfg      *ClosedConfig
	eng      sim.Engine
	thinkSrc *rng.Source
	pickSrc  *rng.Source
	pick     *rng.Categorical
	think    rng.Exponential
	servers  []*closedServer
	sanPool  *san
	res      *ClosedResult
	err      error

	// Tuning-round scratch, reused across intervals; fsLoads is the
	// constant closed-loop offered load, computed once.
	envServers []policy.ServerInfo
	envReports []anu.Report
	fsLoads    []float64
}

// closedClient is one client's cycle chain. A closed-loop client has at
// most one request in flight, so its cycle state lives in the struct
// instead of a closure per cycle, and the pooled metadata and transfer
// jobs reference the two callbacks built once at start-up.
type closedClient struct {
	h     *closedLoop
	start float64
	fs    int
	srv   *closedServer

	mdDone  func(*sim.Job)
	sanDone func(*sim.Job)
}

// closedCycle starts a client's next think->request cycle (the typed
// re-schedule callback, so cycling never allocates).
func closedCycle(arg any) {
	c := arg.(*closedClient)
	h := c.h
	c.start = h.eng.Now()
	c.fs = h.pick.Sample(h.pickSrc)
	c.srv = h.route(c.fs)
	j := h.eng.AcquireJob()
	j.Demand = h.cfg.MetadataDemand
	j.Done = c.mdDone
	c.srv.res.Submit(j)
}

// route returns the live server for a file set: the policy's placement
// when it is up, otherwise a deterministic index fallback.
func (h *closedLoop) route(fs int) *closedServer {
	if id := h.cfg.Policy.Place(fs); id != policy.NoServer {
		if int(id) < len(h.servers) && h.servers[id].up {
			return h.servers[id]
		}
	}
	return h.servers[fs%len(h.servers)]
}

// metadataDone records the metadata phase and either finishes the cycle
// or releases the data transfer to the SAN.
func (c *closedClient) metadataDone() {
	h := c.h
	now := h.eng.Now()
	mdLatency := now - c.start
	if now <= h.cfg.Duration {
		h.res.MetadataLatency.Add(mdLatency)
	}
	c.srv.n++
	c.srv.sum += mdLatency
	if h.sanPool == nil {
		c.finish()
		return
	}
	// The closed loop stripes by the pre-increment sequence (the open
	// loop increments first); both keys hash through the reused buffer,
	// bit-identical to the fmt.Sprintf form.
	p := h.sanPool
	b := strconv.AppendInt(p.keyBuf[:0], int64(c.fs), 10)
	b = append(b, '/')
	b = strconv.AppendUint(b, p.seq, 10)
	p.keyBuf = b
	disk := p.disks[p.family.HashDigest(hashx.PrehashBytes(b), 0)%uint64(len(p.disks))]
	p.seq++
	j := h.eng.AcquireJob()
	j.Demand = h.cfg.SAN.TransferDemand
	j.Done = c.sanDone
	disk.Submit(j)
}

// finish closes the cycle and, while the run lasts, schedules the next
// one after an exponential think time.
func (c *closedClient) finish() {
	h := c.h
	now := h.eng.Now()
	if now <= h.cfg.Duration {
		h.res.Cycles++
		h.res.CycleLatency.Add(now - c.start)
	}
	if now < h.cfg.Duration {
		h.eng.ScheduleCall(h.think.Sample(h.thinkSrc), closedCycle, c)
	}
}

// RunClosed executes a closed-loop simulation.
func RunClosed(cfg ClosedConfig) (*ClosedResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	src := rng.New(cfg.Seed)
	h := &closedLoop{
		cfg:      &cfg,
		thinkSrc: src.Stream("think"),
		pickSrc:  src.Stream("pick"),
		think:    rng.NewExponential(1 / math.Max(cfg.ThinkTime, 1e-9)),
		res:      &ClosedResult{},
	}

	weights := make([]float64, len(cfg.FileSets))
	for i, fs := range cfg.FileSets {
		w := fs.Weight
		if w <= 0 {
			w = 1
		}
		weights[i] = w
	}
	h.pick = rng.NewCategorical(weights)

	h.servers = make([]*closedServer, len(cfg.Speeds))
	for i, speed := range cfg.Speeds {
		h.servers[i] = &closedServer{res: sim.NewResource(&h.eng, fmt.Sprintf("server-%d", i), speed), up: true}
	}

	if cfg.SAN.Enabled {
		h.sanPool = newSAN(&h.eng, cfg.SAN)
	}

	// Closed-loop ground truth for prescient-class policies: the
	// long-run offered load per file set under the pick weights. It is
	// constant across rounds, so it is computed once and the slice
	// shared with every Retune (as the open loop has always done).
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	offered := float64(cfg.Clients) / math.Max(cfg.ThinkTime, 1e-9) * cfg.MetadataDemand
	h.fsLoads = make([]float64, len(weights))
	for i, w := range weights {
		h.fsLoads[i] = offered * w / totalW
	}

	// Each client is a self-rescheduling cycle chain with a random
	// initial phase. The two completion callbacks are built once per
	// client; every subsequent cycle reuses them with pooled jobs.
	for i := 0; i < cfg.Clients; i++ {
		c := &closedClient{h: h}
		c.mdDone = func(*sim.Job) { c.metadataDone() }
		c.sanDone = func(*sim.Job) { c.finish() }
		h.eng.ScheduleCall(h.think.Sample(h.thinkSrc)*h.thinkSrc.Float64(), closedCycle, c)
	}

	// Tuning loop: report per-server interval latencies to the policy.
	ticker := h.eng.NewTicker(cfg.TuneInterval, func() {
		if h.eng.Now() > cfg.Duration {
			return
		}
		h.res.TuningRounds++
		env := policy.Env{Now: h.eng.Now(), FileSetLoads: h.fsLoads}
		servers := h.envServers[:0]
		reports := h.envReports[:0]
		for i, s := range h.servers {
			servers = append(servers, policy.ServerInfo{ID: policy.ServerID(i), Speed: cfg.Speeds[i], Up: s.up})
			rep := anu.Report{Server: policy.ServerID(i), Requests: s.n}
			if s.n > 0 {
				rep.Latency = s.sum / float64(s.n)
			}
			reports = append(reports, rep)
			s.n, s.sum = 0, 0
		}
		h.envServers, h.envReports = servers, reports
		env.Servers, env.Reports = servers, reports
		if err := cfg.Policy.Retune(&env); err != nil {
			h.err = fmt.Errorf("clustersim: closed retune at t=%.0f: %w", h.eng.Now(), err)
			h.eng.Stop()
		}
	})

	// Snapshot SAN busy time exactly at the measurement horizon, before
	// the post-run drain inflates it.
	var busyInWindow float64
	if h.sanPool != nil {
		h.eng.ScheduleAt(cfg.Duration, func() {
			for _, d := range h.sanPool.disks {
				busyInWindow += d.BusyTime()
			}
		})
	}

	h.eng.Run(cfg.Duration)
	ticker.Stop()
	h.eng.RunAll()
	if h.err != nil {
		return nil, h.err
	}

	h.res.Throughput = float64(h.res.Cycles) / cfg.Duration
	if h.sanPool != nil {
		h.res.SANUtilization = busyInWindow / (float64(len(h.sanPool.disks)) * cfg.Duration)
	}
	return h.res, nil
}
