package clustersim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"anurand/internal/metrics"
)

// DeterminismDigest folds every numerically meaningful field of the
// Result — counters, bit-exact float values, per-server statistics in id
// order, the movement log and the latency distribution — into one short
// hex string. Two runs of the same configuration must produce the same
// digest; the experiment package pins golden digests for every
// registered strategy so engine-level optimizations (event pooling,
// calendar layout, buffer reuse) can prove they did not perturb results.
//
// Floats are digested through math.Float64bits: the digest detects a
// single ULP of drift, not just "roughly equal" changes.
func (r *Result) DeterminismDigest() string {
	h := fnv.New64a()
	put := func(format string, args ...any) {
		fmt.Fprintf(h, format, args...)
	}
	f := func(x float64) uint64 { return math.Float64bits(x) }
	sum := func(tag string, s metrics.Summary) {
		put("%s:%d:%x:%x:%x:%x;", tag, s.N(), f(s.Sum()), f(s.Mean()), f(s.Min()), f(s.Max()))
	}

	put("policy=%s;", r.Policy)
	put("events=%d;completed=%d;dropped=%d;rerouted=%d;rounds=%d;", r.EventsRun, r.Completed, r.Dropped, r.Rerouted, r.TuningRounds)
	put("moved=%d:%x;state=%d;duration=%x;", r.TotalMoved, f(r.TotalWorkMovedFrac), r.SharedStateBytes, f(r.Duration))
	sum("agg", r.Aggregate)
	sum("steady", r.SteadyAggregate)
	if r.LatencyHist != nil {
		put("hist:%d:%d:%d:%x;", r.LatencyHist.Total(), r.LatencyHist.Underflow(), r.LatencyHist.Overflow(), f(r.LatencyHist.Max()))
		for _, q := range []float64{0.5, 0.95, 0.99, 0.999} {
			put("q%x=%x;", f(q), f(r.LatencyHist.Quantile(q)))
		}
	}
	ids := make([]ServerID, 0, len(r.Servers))
	for id := range r.Servers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := r.Servers[id]
		put("srv%d:%x:%x:%d;", id, f(s.Speed), f(s.BusyTime), s.Served)
		sum("lat", s.Latency)
	}
	for _, m := range r.Moves {
		put("mv%d:%x:%d:%x;", m.Round, f(m.Time), m.FileSetsMoved, f(m.WorkMovedFrac))
	}
	if r.SAN != nil {
		put("san:%d:%d:%x:%x;", r.SAN.Disks, r.SAN.Transfers, f(r.SAN.BusyInWindow), f(r.SAN.UtilizationInWindow))
		sum("e2e", r.SAN.EndToEnd)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
