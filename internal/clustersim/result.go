package clustersim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"anurand/internal/metrics"
)

// MoveRecord accounts for one tuning round's load movement — the data
// behind Figure 7.
type MoveRecord struct {
	// Round is the 1-based tuning round number.
	Round int
	// Time is the virtual time of the round.
	Time float64
	// FileSetsMoved is how many file sets changed server this round.
	FileSetsMoved int
	// WorkMovedFrac is the moved file sets' share of the trace's total
	// demand.
	WorkMovedFrac float64
}

// ServerStats aggregates one server's view of the run.
type ServerStats struct {
	ID       ServerID
	Speed    float64
	Latency  metrics.Summary // per-request response times
	Series   *metrics.Series // response times bucketed by completion time
	BusyTime float64
	Served   uint64
}

// Result is the outcome of one simulation run.
type Result struct {
	// Policy is the policy's name.
	Policy string

	// Aggregate summarizes all completed request latencies (Figure 6a).
	Aggregate metrics.Summary

	// LatencyHist is the distribution behind Aggregate: every completed
	// request latency in a log-bucket histogram, so figures can report
	// p50/p95/p99/p999 tails instead of a mean alone — the paper's
	// consistency claim is about the distribution, and under heavy-tailed
	// arrivals the mean hides exactly the tail that distinguishes the
	// policies.
	LatencyHist *metrics.Histogram

	// SteadyAggregate summarizes the latencies of requests completing
	// after the steady-state cutoff (Config.SteadyAfterFrac of the
	// duration), i.e. with the adaptation transient excluded.
	SteadyAggregate metrics.Summary

	// Servers holds per-server statistics keyed by id (Figures 4, 5,
	// 6b).
	Servers map[ServerID]*ServerStats

	// Moves records every tuning round's movement (Figure 7).
	Moves []MoveRecord

	// TotalMoved is the total number of file-set moves across the run.
	TotalMoved int

	// TotalWorkMovedFrac is the cumulative WorkMovedFrac.
	TotalWorkMovedFrac float64

	// SharedStateBytes is the policy's replicated state size at the end
	// of the run (Figure 8's second axis).
	SharedStateBytes int

	// Completed and Dropped count requests served and requests that
	// found no live server.
	Completed, Dropped uint64

	// Rerouted counts requests that had to be diverted from their
	// placed server because it was down.
	Rerouted uint64

	// TuningRounds is the number of tuning rounds executed.
	TuningRounds int

	// EventsRun is the engine's executed-event count for the whole run —
	// the cheapest whole-trajectory determinism probe: two runs that
	// executed different event sequences cannot agree on it by accident
	// alongside the latency statistics.
	EventsRun uint64

	// SAN holds the data-path statistics when Config.SAN was enabled,
	// nil otherwise.
	SAN *SANStats

	// Duration is the trace duration in seconds.
	Duration float64
}

// ServerIDs returns the result's server ids in ascending order.
func (r *Result) ServerIDs() []ServerID {
	ids := make([]ServerID, 0, len(r.Servers))
	for id := range r.Servers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// MeanLatency returns the aggregate mean response time.
func (r *Result) MeanLatency() float64 { return r.Aggregate.Mean() }

// SteadyMeanLatency returns the mean response time after the
// steady-state cutoff.
func (r *Result) SteadyMeanLatency() float64 { return r.SteadyAggregate.Mean() }

// LatencyQuantile returns the q-quantile (q in [0,1]) of the aggregate
// latency distribution, NaN when no requests completed.
func (r *Result) LatencyQuantile(q float64) float64 {
	if r.LatencyHist == nil {
		return math.NaN()
	}
	return r.LatencyHist.Quantile(q)
}

// LatencyP50, LatencyP95, LatencyP99 and LatencyP999 are the tail
// columns of the figures.
func (r *Result) LatencyP50() float64  { return r.LatencyQuantile(0.50) }
func (r *Result) LatencyP95() float64  { return r.LatencyQuantile(0.95) }
func (r *Result) LatencyP99() float64  { return r.LatencyQuantile(0.99) }
func (r *Result) LatencyP999() float64 { return r.LatencyQuantile(0.999) }

// LatencyStdDev returns the aggregate response-time standard deviation.
func (r *Result) LatencyStdDev() float64 { return r.Aggregate.StdDev() }

// PerServerMeans returns each server's mean latency in id order — the
// consistency view of Figure 6b.
func (r *Result) PerServerMeans() map[ServerID]float64 {
	out := make(map[ServerID]float64, len(r.Servers))
	for id, s := range r.Servers {
		out[id] = s.Latency.Mean()
	}
	return out
}

// ConsistencySpread measures performance consistency across servers: the
// ratio of the highest to the lowest per-server mean latency, ignoring
// servers that completed fewer than minRequests (the paper excludes the
// near-idle weakest server when judging consistency).
func (r *Result) ConsistencySpread(minRequests uint64) float64 {
	lo, hi := 0.0, 0.0
	first := true
	for _, s := range r.Servers {
		if s.Latency.N() < minRequests {
			continue
		}
		m := s.Latency.Mean()
		if first {
			lo, hi = m, m
			first = false
			continue
		}
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if first || lo == 0 {
		return 0
	}
	return hi / lo
}

// String renders a one-line summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: mean=%.3fs sd=%.3fs completed=%d dropped=%d moved=%d state=%dB",
		r.Policy, r.MeanLatency(), r.LatencyStdDev(), r.Completed, r.Dropped, r.TotalMoved, r.SharedStateBytes)
	if r.LatencyHist != nil && r.LatencyHist.Total() > 0 {
		fmt.Fprintf(&b, " p50=%.3fs p99=%.3fs", r.LatencyP50(), r.LatencyP99())
	}
	return b.String()
}
