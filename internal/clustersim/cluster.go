package clustersim

import (
	"fmt"
	"sort"

	"anurand/internal/anu"
	"anurand/internal/metrics"
	"anurand/internal/policy"
	"anurand/internal/sim"
)

// Run simulates the configured cluster over the whole trace and returns
// the collected results. Runs are deterministic: the same configuration
// (including the policy's construction seed) always produces the same
// result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := newRunner(&cfg)
	return r.run()
}

// Scratch is reusable simulation memory — the engine arena holding the
// event free list, job pool and calendar backing array. A caller
// running many simulations back to back (the experiment worker pool)
// passes the same Scratch to each run via Config.Scratch, so the
// steady-state memory is allocated once per worker rather than once per
// cell. A Scratch must not be shared by concurrent runs. The zero value
// is ready to use.
type Scratch struct {
	arena sim.Arena
}

// serverState is one server's live simulation state.
type serverState struct {
	id    ServerID
	idx   int32 // dense index into runner.states; j.Aux carries idx+1
	speed float64
	res   *sim.Resource
	up    bool
	gone  bool // decommissioned: excluded from policy snapshots

	// requests counts real trace requests completed here (the
	// resource's own Served() also counts injected cache-flush work).
	requests uint64

	// Interval accumulators for the next latency report.
	intervalCount uint64
	intervalSum   float64

	stats *ServerStats
}

type runner struct {
	cfg    *Config
	eng    sim.Engine
	trace  traceView
	policy policy.Placer

	// states is append-only dense server storage; byID maps a ServerID
	// to its index (-1 when absent), replacing the per-request map
	// lookup of earlier versions; order keeps the ids sorted for the
	// deterministic snapshot and fallback iteration.
	states []*serverState
	byID   []int32
	order  []ServerID

	assignment []ServerID // file set -> placed server
	cold       []int      // remaining cold-penalty requests per file set

	fsWork    []float64 // total demand per file set (move accounting)
	totalWork float64
	fsLoads   []float64 // whole-trace offered load per file set (prescient env)

	nextArrival int // cursor into Trace.Requests for the chained arrivals

	// doneFn is the one bound completion callback every request job
	// shares; the job's typed slots carry the per-request context a
	// closure used to.
	doneFn func(*sim.Job)

	// Tuning-round scratch, reused across intervals.
	envServers []policy.ServerInfo
	envReports []anu.Report
	liveBuf    []ServerID
	keepFn     func(*sim.Job) bool // DrainQueue predicate over drainFS
	drainFS    int32

	window      float64
	steadyAfter float64
	san         *san
	result      *Result
	round       int
	err         error // first policy/harness error, aborts the run
}

// traceView caches the trace fields the hot path touches.
type traceView struct {
	duration float64
	requests int
}

func newRunner(cfg *Config) *runner {
	window := cfg.ReportWindow
	if window == 0 {
		window = cfg.TuneInterval
	}
	r := &runner{
		cfg:        cfg,
		policy:     cfg.Policy,
		assignment: make([]ServerID, len(cfg.Trace.FileSets)),
		cold:       make([]int, len(cfg.Trace.FileSets)),
		window:     window,
		trace:      traceView{duration: cfg.Trace.Duration, requests: len(cfg.Trace.Requests)},
		result: &Result{
			Policy:  cfg.Policy.Name(),
			Servers: make(map[ServerID]*ServerStats),
			// 1 ms to 1e6 s: wide enough that the simple policy's
			// unbounded weakest-server queue still lands in buckets and
			// the tail clamps to the max observed beyond that.
			LatencyHist: metrics.NewHistogram(1e-3, 1e6, 90),
			Duration:    cfg.Trace.Duration,
		},
	}
	if cfg.Scratch != nil {
		r.eng.UseArena(&cfg.Scratch.arena)
	}
	r.doneFn = r.jobDone
	r.keepFn = func(j *sim.Job) bool { return j.Aux == 0 || j.Tag != r.drainFS }
	frac := cfg.SteadyAfterFrac
	if frac == 0 {
		frac = 0.25
	}
	r.steadyAfter = frac * cfg.Trace.Duration
	for i, speed := range cfg.Speeds {
		r.addServer(ServerID(i), speed)
	}
	if cfg.SAN.Enabled {
		r.san = newSAN(&r.eng, cfg.SAN)
	}
	r.precomputeLoads()
	return r
}

// state returns the server with the given id, nil if it never existed.
// Decommissioned servers still resolve (matching the lifetime the old
// map gave them); callers check up/gone.
func (r *runner) state(id ServerID) *serverState {
	if id < 0 || int(id) >= len(r.byID) {
		return nil
	}
	i := r.byID[id]
	if i < 0 {
		return nil
	}
	return r.states[i]
}

func (r *runner) addServer(id ServerID, speed float64) {
	s := &serverState{
		id:    id,
		idx:   int32(len(r.states)),
		speed: speed,
		res:   sim.NewResource(&r.eng, fmt.Sprintf("server-%d", id), speed),
		up:    true,
		stats: &ServerStats{ID: id, Speed: speed, Series: metrics.NewSeries(r.window)},
	}
	r.states = append(r.states, s)
	for int(id) >= len(r.byID) {
		r.byID = append(r.byID, -1)
	}
	r.byID[id] = s.idx
	// Binary-search insertion keeps order sorted in O(log n) compares
	// and one copy, instead of re-sorting the whole slice per
	// commission event.
	at := sort.Search(len(r.order), func(i int) bool { return r.order[i] >= id })
	r.order = append(r.order, 0)
	copy(r.order[at+1:], r.order[at:])
	r.order[at] = id
	r.result.Servers[id] = s.stats
}

// precomputeLoads builds the ground-truth per-file-set offered loads —
// the "perfect knowledge of workload properties" the prescient-class
// policies are entitled to (the workload's stationary rates, not the
// realized per-interval noise).
func (r *runner) precomputeLoads() {
	r.fsWork = make([]float64, len(r.cfg.Trace.FileSets))
	for _, req := range r.cfg.Trace.Requests {
		r.fsWork[req.FileSet] += req.Demand
		r.totalWork += req.Demand
	}
	r.fsLoads = make([]float64, len(r.fsWork))
	for i, w := range r.fsWork {
		r.fsLoads[i] = w / r.trace.duration
	}
}

func (r *runner) run() (*Result, error) {
	// Initial placement at t=0. Prescient-class policies receive their
	// perfect knowledge here, so they are balanced "from the very
	// beginning" as in the paper; ANU and simple start uniform.
	if err := r.retunePolicy(); err != nil {
		return nil, err
	}
	for fs := range r.assignment {
		r.assignment[fs] = r.policy.Place(fs)
	}

	// Arrival events, chained one at a time to keep the calendar small.
	if r.trace.requests > 0 {
		first := r.cfg.Trace.Requests[0].Time
		r.eng.ScheduleCallAt(first, runnerArrive, r)
	}

	// The tuning ticker runs for the trace duration.
	ticker := r.eng.NewTicker(r.cfg.TuneInterval, func() {
		if r.err != nil || r.eng.Now() > r.trace.duration {
			return
		}
		r.tuningRound()
	})

	// Configuration events.
	for _, ev := range r.cfg.Events {
		ev := ev
		r.eng.ScheduleAt(ev.Time, func() { r.applyEvent(ev) })
	}

	// Snapshot the SAN's in-window utilization exactly at the trace
	// end, before drain.
	if r.san != nil {
		r.eng.ScheduleAt(r.trace.duration, func() { r.san.snapshotWindow(r.trace.duration) })
	}

	runPast := r.cfg.RunPast
	if runPast == 0 {
		runPast = 10 * r.cfg.TuneInterval
	}
	end := r.trace.duration
	for _, ev := range r.cfg.Events {
		if ev.Time > end {
			end = ev.Time
		}
	}
	r.eng.Run(end + runPast)
	ticker.Stop()
	r.eng.RunAll() // drain remaining queued work
	if r.err != nil {
		return nil, r.err
	}

	for _, s := range r.states {
		s.stats.BusyTime = s.res.BusyTime()
		s.stats.Served = s.requests
	}
	r.result.EventsRun = r.eng.EventsRun()
	r.result.SharedStateBytes = r.policy.SharedStateSize()
	if r.san != nil {
		stats := r.san.stats
		r.result.SAN = &stats
	}
	return r.result, nil
}

// runnerArrive routes and submits the next trace request, then
// schedules its successor — the typed form of the chained-arrival
// closure, so the steady state schedules without allocating.
func runnerArrive(arg any) { arg.(*runner).arrive() }

func (r *runner) arrive() {
	if r.err != nil {
		return
	}
	req := r.cfg.Trace.Requests[r.nextArrival]
	r.nextArrival++
	r.dispatch(req.FileSet, req.Demand, req.Time)
	if r.nextArrival < r.trace.requests {
		r.eng.ScheduleCallAt(r.cfg.Trace.Requests[r.nextArrival].Time, runnerArrive, r)
	}
}

// dispatch routes one request (fresh or re-routed after failure) to a
// live server and submits it as a pooled job: file set in Tag, target
// server index (+1, so zero stays "not a request") in Aux, original
// arrival in Stamp.
func (r *runner) dispatch(fs int32, demand, arrive float64) {
	target := r.route(int(fs))
	if target == policy.NoServer {
		r.result.Dropped++
		return
	}
	s := r.state(target)
	if r.cold[fs] > 0 && r.cfg.ColdPenalty > 1 {
		demand *= r.cfg.ColdPenalty
		r.cold[fs]--
	}
	j := r.eng.AcquireJob()
	j.Demand = demand
	j.Tag = fs
	j.Aux = s.idx + 1
	j.Stamp = arrive
	j.Done = r.doneFn
	s.res.Submit(j)
}

// route returns the live server for a file set: the policy's placement
// when it is up, otherwise a deterministic fallback over live servers.
func (r *runner) route(fs int) ServerID {
	if fs >= 0 && fs < len(r.assignment) {
		if id := r.assignment[fs]; id != policy.NoServer {
			if s := r.state(id); s != nil && s.up {
				return id
			}
		}
	}
	// Fallback: spread over live servers by file-set index.
	live := r.liveBuf[:0]
	for _, id := range r.order {
		if s := r.state(id); s.up && !s.gone {
			live = append(live, id)
		}
	}
	r.liveBuf = live
	if len(live) == 0 {
		return policy.NoServer
	}
	r.result.Rerouted++
	return live[fs%len(live)]
}

// jobDone records a finished request and, when the SAN is modelled,
// releases the client's data transfer to the shared disks.
func (r *runner) jobDone(j *sim.Job) {
	s := r.states[j.Aux-1]
	latency := r.eng.Now() - j.Stamp
	r.result.Completed++
	r.result.Aggregate.Add(latency)
	r.result.LatencyHist.Add(latency)
	if r.eng.Now() >= r.steadyAfter {
		r.result.SteadyAggregate.Add(latency)
	}
	s.requests++
	s.stats.Latency.Add(latency)
	s.stats.Series.Add(r.eng.Now(), latency)
	s.intervalCount++
	s.intervalSum += latency
	if r.san != nil {
		r.san.transfer(j.Tag, j.Stamp)
	}
}

// tuningRound runs one periodic load-placement tuning round.
func (r *runner) tuningRound() {
	r.round++
	r.result.TuningRounds++
	if err := r.retunePolicy(); err != nil {
		r.err = err
		r.eng.Stop()
		return
	}
	r.applyPlacement(true)
}

// retunePolicy snapshots the environment and retunes the policy. The
// snapshot slices are scratch buffers reused across rounds; policies
// must not retain them past Retune (they copy what they keep, as the
// long-lived FileSetLoads slice has always required).
func (r *runner) retunePolicy() error {
	env := policy.Env{Now: r.eng.Now()}
	servers := r.envServers[:0]
	reports := r.envReports[:0]
	for _, id := range r.order {
		s := r.state(id)
		if s.gone {
			continue
		}
		servers = append(servers, policy.ServerInfo{ID: id, Speed: s.speed, Up: s.up})
		if s.up {
			rep := anu.Report{Server: id, Requests: s.intervalCount}
			if s.intervalCount > 0 {
				rep.Latency = s.intervalSum / float64(s.intervalCount)
				if r.cfg.BacklogAwareReports {
					rep.Latency += s.res.Backlog() / s.speed
				}
			}
			reports = append(reports, rep)
		}
		s.intervalCount, s.intervalSum = 0, 0
	}
	r.envServers, r.envReports = servers, reports
	env.Servers, env.Reports = servers, reports
	env.FileSetLoads = r.fsLoads
	if err := r.policy.Retune(&env); err != nil {
		return fmt.Errorf("clustersim: retune at t=%.0f: %w", r.eng.Now(), err)
	}
	return nil
}

// applyPlacement recomputes every file set's placement, applies movement
// costs, and records the round's movement.
func (r *runner) applyPlacement(record bool) {
	moved := 0
	var movedWork float64
	for fs := range r.assignment {
		next := r.policy.Place(fs)
		prev := r.assignment[fs]
		if next == prev || next == policy.NoServer {
			continue
		}
		r.assignment[fs] = next
		if prev == policy.NoServer {
			continue // initial placement, not a move
		}
		moved++
		movedWork += r.fsWork[fs]
		// The shedding server flushes its cache for the departing file
		// set; the acquiring server starts cold.
		if old := r.state(prev); old != nil && old.up {
			if r.cfg.MoveFlushTime > 0 {
				old.res.InjectBusy(r.cfg.MoveFlushTime)
			}
			if r.cfg.RedirectOnMove {
				r.drainFS = int32(fs)
				redirected := old.res.DrainQueue(r.keepFn)
				for _, j := range redirected {
					fs32, demand, arrive := j.Tag, j.Demand, j.Stamp
					r.eng.ReleaseJob(j)
					r.dispatch(fs32, demand, arrive)
				}
			}
		}
		r.cold[fs] = r.cfg.ColdRequests
	}
	if !record {
		return
	}
	frac := 0.0
	if r.totalWork > 0 {
		frac = movedWork / r.totalWork
	}
	r.result.Moves = append(r.result.Moves, MoveRecord{
		Round:         r.round,
		Time:          r.eng.Now(),
		FileSetsMoved: moved,
		WorkMovedFrac: frac,
	})
	r.result.TotalMoved += moved
	r.result.TotalWorkMovedFrac += frac
}

// reclaimOrphans re-dispatches a failed server's queued request jobs
// (latency keeps counting from the original arrival, as a client retry
// would observe) and recycles injected flush work, which dies with the
// server.
func (r *runner) reclaimOrphans(orphans []*sim.Job) {
	for _, j := range orphans {
		if j.Aux == 0 {
			r.eng.ReleaseJob(j)
			continue
		}
		fs, demand, arrive := j.Tag, j.Demand, j.Stamp
		r.eng.ReleaseJob(j)
		r.dispatch(fs, demand, arrive)
	}
}

// applyEvent executes a scheduled configuration change.
func (r *runner) applyEvent(ev Event) {
	if r.err != nil {
		return
	}
	switch ev.Kind {
	case Fail:
		s := r.state(ev.Server)
		if s == nil || !s.up {
			return
		}
		orphans := s.res.Fail()
		s.up = false
		r.reactToEvent()
		r.reclaimOrphans(orphans)
	case Recover:
		s := r.state(ev.Server)
		if s == nil || s.up || s.gone {
			return
		}
		s.res.Recover()
		s.up = true
		r.reactToEvent()
	case Commission:
		if r.state(ev.Server) != nil {
			return
		}
		r.addServer(ev.Server, ev.Speed)
		r.reactToEvent()
	case Decommission:
		s := r.state(ev.Server)
		if s == nil || s.gone {
			return
		}
		orphans := s.res.Fail()
		s.up = false
		s.gone = true
		r.reactToEvent()
		r.reclaimOrphans(orphans)
	}
}

// reactToEvent retunes immediately if configured, so placement reflects
// the new topology without waiting for the next interval.
func (r *runner) reactToEvent() {
	if !r.cfg.RetuneOnEvents {
		return
	}
	if err := r.retunePolicy(); err != nil {
		r.err = err
		r.eng.Stop()
		return
	}
	r.applyPlacement(false)
}
