package clustersim

import (
	"fmt"
	"sort"

	"anurand/internal/anu"
	"anurand/internal/metrics"
	"anurand/internal/policy"
	"anurand/internal/sim"
)

// Run simulates the configured cluster over the whole trace and returns
// the collected results. Runs are deterministic: the same configuration
// (including the policy's construction seed) always produces the same
// result.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := newRunner(&cfg)
	return r.run()
}

// serverState is one server's live simulation state.
type serverState struct {
	id    ServerID
	speed float64
	res   *sim.Resource
	up    bool
	gone  bool // decommissioned: excluded from policy snapshots

	// requests counts real trace requests completed here (the
	// resource's own Served() also counts injected cache-flush work).
	requests uint64

	// Interval accumulators for the next latency report.
	intervalCount uint64
	intervalSum   float64

	stats *ServerStats
}

// pendingRequest is the payload carried through a server queue.
type pendingRequest struct {
	fs     int32
	arrive float64
}

type runner struct {
	cfg    *Config
	eng    sim.Engine
	trace  traceView
	policy policy.Placer

	servers map[ServerID]*serverState
	order   []ServerID

	assignment []ServerID // file set -> placed server
	cold       []int      // remaining cold-penalty requests per file set

	fsWork    []float64 // total demand per file set (move accounting)
	totalWork float64
	fsLoads   []float64 // whole-trace offered load per file set (prescient env)

	window      float64
	steadyAfter float64
	san         *san
	result      *Result
	round       int
	err         error // first policy/harness error, aborts the run
}

// traceView caches the trace fields the hot path touches.
type traceView struct {
	duration float64
	requests int
}

func newRunner(cfg *Config) *runner {
	window := cfg.ReportWindow
	if window == 0 {
		window = cfg.TuneInterval
	}
	r := &runner{
		cfg:        cfg,
		policy:     cfg.Policy,
		servers:    make(map[ServerID]*serverState, len(cfg.Speeds)),
		assignment: make([]ServerID, len(cfg.Trace.FileSets)),
		cold:       make([]int, len(cfg.Trace.FileSets)),
		window:     window,
		trace:      traceView{duration: cfg.Trace.Duration, requests: len(cfg.Trace.Requests)},
		result: &Result{
			Policy:  cfg.Policy.Name(),
			Servers: make(map[ServerID]*ServerStats),
			// 1 ms to 1e6 s: wide enough that the simple policy's
			// unbounded weakest-server queue still lands in buckets and
			// the tail clamps to the max observed beyond that.
			LatencyHist: metrics.NewHistogram(1e-3, 1e6, 90),
			Duration:    cfg.Trace.Duration,
		},
	}
	frac := cfg.SteadyAfterFrac
	if frac == 0 {
		frac = 0.25
	}
	r.steadyAfter = frac * cfg.Trace.Duration
	for i, speed := range cfg.Speeds {
		r.addServer(ServerID(i), speed)
	}
	if cfg.SAN.Enabled {
		r.san = newSAN(&r.eng, cfg.SAN)
	}
	r.precomputeLoads()
	return r
}

func (r *runner) addServer(id ServerID, speed float64) {
	s := &serverState{
		id:    id,
		speed: speed,
		res:   sim.NewResource(&r.eng, fmt.Sprintf("server-%d", id), speed),
		up:    true,
		stats: &ServerStats{ID: id, Speed: speed, Series: metrics.NewSeries(r.window)},
	}
	r.servers[id] = s
	r.order = append(r.order, id)
	sort.Slice(r.order, func(i, j int) bool { return r.order[i] < r.order[j] })
	r.result.Servers[id] = s.stats
}

// precomputeLoads builds the ground-truth per-file-set offered loads —
// the "perfect knowledge of workload properties" the prescient-class
// policies are entitled to (the workload's stationary rates, not the
// realized per-interval noise).
func (r *runner) precomputeLoads() {
	r.fsWork = make([]float64, len(r.cfg.Trace.FileSets))
	for _, req := range r.cfg.Trace.Requests {
		r.fsWork[req.FileSet] += req.Demand
		r.totalWork += req.Demand
	}
	r.fsLoads = make([]float64, len(r.fsWork))
	for i, w := range r.fsWork {
		r.fsLoads[i] = w / r.trace.duration
	}
}

func (r *runner) run() (*Result, error) {
	// Initial placement at t=0. Prescient-class policies receive their
	// perfect knowledge here, so they are balanced "from the very
	// beginning" as in the paper; ANU and simple start uniform.
	if err := r.retunePolicy(); err != nil {
		return nil, err
	}
	for fs := range r.assignment {
		r.assignment[fs] = r.policy.Place(fs)
	}

	// Arrival events, chained one at a time to keep the calendar small.
	if r.trace.requests > 0 {
		first := r.cfg.Trace.Requests[0].Time
		r.eng.ScheduleAt(first, func() { r.arrive(0) })
	}

	// The tuning ticker runs for the trace duration.
	ticker := r.eng.NewTicker(r.cfg.TuneInterval, func() {
		if r.err != nil || r.eng.Now() > r.trace.duration {
			return
		}
		r.tuningRound()
	})

	// Configuration events.
	for _, ev := range r.cfg.Events {
		ev := ev
		r.eng.ScheduleAt(ev.Time, func() { r.applyEvent(ev) })
	}

	// Snapshot the SAN's in-window utilization exactly at the trace
	// end, before drain.
	if r.san != nil {
		r.eng.ScheduleAt(r.trace.duration, func() { r.san.snapshotWindow(r.trace.duration) })
	}

	runPast := r.cfg.RunPast
	if runPast == 0 {
		runPast = 10 * r.cfg.TuneInterval
	}
	end := r.trace.duration
	for _, ev := range r.cfg.Events {
		if ev.Time > end {
			end = ev.Time
		}
	}
	r.eng.Run(end + runPast)
	ticker.Stop()
	r.eng.RunAll() // drain remaining queued work
	if r.err != nil {
		return nil, r.err
	}

	for _, s := range r.servers {
		s.stats.BusyTime = s.res.BusyTime()
		s.stats.Served = s.requests
	}
	r.result.SharedStateBytes = r.policy.SharedStateSize()
	if r.san != nil {
		stats := r.san.stats
		r.result.SAN = &stats
	}
	return r.result, nil
}

// arrive routes and submits trace request i, then schedules request i+1.
func (r *runner) arrive(i int) {
	if r.err != nil {
		return
	}
	req := r.cfg.Trace.Requests[i]
	r.dispatch(req.FileSet, req.Demand, req.Time)
	if next := i + 1; next < r.trace.requests {
		r.eng.ScheduleAt(r.cfg.Trace.Requests[next].Time, func() { r.arrive(next) })
	}
}

// dispatch routes one request (fresh or re-routed after failure) to a
// live server and submits it.
func (r *runner) dispatch(fs int32, demand, arrive float64) {
	target := r.route(int(fs))
	if target == policy.NoServer {
		r.result.Dropped++
		return
	}
	s := r.servers[target]
	if r.cold[fs] > 0 && r.cfg.ColdPenalty > 1 {
		demand *= r.cfg.ColdPenalty
		r.cold[fs]--
	}
	s.res.Submit(&sim.Job{
		Demand:  demand,
		Payload: pendingRequest{fs: fs, arrive: arrive},
		Done:    func(j *sim.Job) { r.complete(s, j) },
	})
}

// route returns the live server for a file set: the policy's placement
// when it is up, otherwise a deterministic fallback over live servers.
func (r *runner) route(fs int) ServerID {
	if fs >= 0 && fs < len(r.assignment) {
		if id := r.assignment[fs]; id != policy.NoServer {
			if s, ok := r.servers[id]; ok && s.up {
				return id
			}
		}
	}
	// Fallback: spread over live servers by file-set index.
	var live []ServerID
	for _, id := range r.order {
		if s := r.servers[id]; s.up && !s.gone {
			live = append(live, id)
		}
	}
	if len(live) == 0 {
		return policy.NoServer
	}
	r.result.Rerouted++
	return live[fs%len(live)]
}

// complete records a finished request and, when the SAN is modelled,
// releases the client's data transfer to the shared disks.
func (r *runner) complete(s *serverState, j *sim.Job) {
	req := j.Payload.(pendingRequest)
	latency := r.eng.Now() - req.arrive
	r.result.Completed++
	r.result.Aggregate.Add(latency)
	r.result.LatencyHist.Add(latency)
	if r.eng.Now() >= r.steadyAfter {
		r.result.SteadyAggregate.Add(latency)
	}
	s.requests++
	s.stats.Latency.Add(latency)
	s.stats.Series.Add(r.eng.Now(), latency)
	s.intervalCount++
	s.intervalSum += latency
	if r.san != nil {
		r.san.transfer(r, req.fs, req.arrive)
	}
}

// tuningRound runs one periodic load-placement tuning round.
func (r *runner) tuningRound() {
	r.round++
	r.result.TuningRounds++
	if err := r.retunePolicy(); err != nil {
		r.err = err
		r.eng.Stop()
		return
	}
	r.applyPlacement(true)
}

// retunePolicy snapshots the environment and retunes the policy.
func (r *runner) retunePolicy() error {
	env := policy.Env{Now: r.eng.Now()}
	for _, id := range r.order {
		s := r.servers[id]
		if s.gone {
			continue
		}
		env.Servers = append(env.Servers, policy.ServerInfo{ID: id, Speed: s.speed, Up: s.up})
		if s.up {
			rep := anu.Report{Server: id, Requests: s.intervalCount}
			if s.intervalCount > 0 {
				rep.Latency = s.intervalSum / float64(s.intervalCount)
				if r.cfg.BacklogAwareReports {
					rep.Latency += s.res.Backlog() / s.speed
				}
			}
			env.Reports = append(env.Reports, rep)
		}
		s.intervalCount, s.intervalSum = 0, 0
	}
	env.FileSetLoads = r.fsLoads
	if err := r.policy.Retune(&env); err != nil {
		return fmt.Errorf("clustersim: retune at t=%.0f: %w", r.eng.Now(), err)
	}
	return nil
}

// applyPlacement recomputes every file set's placement, applies movement
// costs, and records the round's movement.
func (r *runner) applyPlacement(record bool) {
	moved := 0
	var movedWork float64
	for fs := range r.assignment {
		next := r.policy.Place(fs)
		prev := r.assignment[fs]
		if next == prev || next == policy.NoServer {
			continue
		}
		r.assignment[fs] = next
		if prev == policy.NoServer {
			continue // initial placement, not a move
		}
		moved++
		movedWork += r.fsWork[fs]
		// The shedding server flushes its cache for the departing file
		// set; the acquiring server starts cold.
		if old, ok := r.servers[prev]; ok && old.up {
			if r.cfg.MoveFlushTime > 0 {
				old.res.InjectBusy(r.cfg.MoveFlushTime)
			}
			if r.cfg.RedirectOnMove {
				fs32 := int32(fs)
				redirected := old.res.DrainQueue(func(j *sim.Job) bool {
					req, isReq := j.Payload.(pendingRequest)
					return !isReq || req.fs != fs32
				})
				for _, j := range redirected {
					req := j.Payload.(pendingRequest)
					r.dispatch(req.fs, j.Demand, req.arrive)
				}
			}
		}
		r.cold[fs] = r.cfg.ColdRequests
	}
	if !record {
		return
	}
	frac := 0.0
	if r.totalWork > 0 {
		frac = movedWork / r.totalWork
	}
	r.result.Moves = append(r.result.Moves, MoveRecord{
		Round:         r.round,
		Time:          r.eng.Now(),
		FileSetsMoved: moved,
		WorkMovedFrac: frac,
	})
	r.result.TotalMoved += moved
	r.result.TotalWorkMovedFrac += frac
}

// applyEvent executes a scheduled configuration change.
func (r *runner) applyEvent(ev Event) {
	if r.err != nil {
		return
	}
	switch ev.Kind {
	case Fail:
		s, ok := r.servers[ev.Server]
		if !ok || !s.up {
			return
		}
		orphans := s.res.Fail()
		s.up = false
		r.reactToEvent()
		// Re-route the failed server's queued work; latency keeps
		// counting from the original arrival, as a client retry would
		// observe.
		for _, j := range orphans {
			req, ok := j.Payload.(pendingRequest)
			if !ok {
				continue // injected flush work dies with the server
			}
			r.dispatch(req.fs, j.Demand, req.arrive)
		}
	case Recover:
		s, ok := r.servers[ev.Server]
		if !ok || s.up || s.gone {
			return
		}
		s.res.Recover()
		s.up = true
		r.reactToEvent()
	case Commission:
		if _, dup := r.servers[ev.Server]; dup {
			return
		}
		r.addServer(ev.Server, ev.Speed)
		r.reactToEvent()
	case Decommission:
		s, ok := r.servers[ev.Server]
		if !ok || s.gone {
			return
		}
		orphans := s.res.Fail()
		s.up = false
		s.gone = true
		r.reactToEvent()
		for _, j := range orphans {
			req, ok := j.Payload.(pendingRequest)
			if !ok {
				continue
			}
			r.dispatch(req.fs, j.Demand, req.arrive)
		}
	}
}

// reactToEvent retunes immediately if configured, so placement reflects
// the new topology without waiting for the next interval.
func (r *runner) reactToEvent() {
	if !r.cfg.RetuneOnEvents {
		return
	}
	if err := r.retunePolicy(); err != nil {
		r.err = err
		r.eng.Stop()
		return
	}
	r.applyPlacement(false)
}
