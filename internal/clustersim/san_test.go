package clustersim

import (
	"testing"

	"anurand/internal/policy"
	"anurand/internal/workload"
)

func sanConfig() SANConfig {
	return SANConfig{Enabled: true, Disks: 8, TransferDemand: 0.5}
}

func TestSANDisabledByDefault(t *testing.T) {
	tr := smallTrace(t, 30)
	res, err := Run(DefaultConfig(tr, newSimplePolicy(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if res.SAN != nil {
		t.Fatal("SAN stats present without SAN enabled")
	}
}

func TestSANValidate(t *testing.T) {
	tr := smallTrace(t, 31)
	cfg := DefaultConfig(tr, newSimplePolicy(t, tr))
	cfg.SAN = SANConfig{Enabled: true, Disks: 0, TransferDemand: 1}
	if _, err := Run(cfg); err == nil {
		t.Error("zero disks accepted")
	}
	cfg.SAN = SANConfig{Enabled: true, Disks: 4, TransferDemand: 0}
	if _, err := Run(cfg); err == nil {
		t.Error("zero transfer demand accepted")
	}
	// Disabled SAN ignores the other fields.
	cfg.SAN = SANConfig{Enabled: false, Disks: -5}
	if _, err := Run(cfg); err != nil {
		t.Errorf("disabled SAN rejected: %v", err)
	}
}

func TestSANTransfersFollowMetadata(t *testing.T) {
	tr := smallTrace(t, 32)
	cfg := DefaultConfig(tr, newANUPolicy(t, tr))
	cfg.SAN = sanConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SAN == nil {
		t.Fatal("SAN stats missing")
	}
	if res.SAN.Transfers != res.Completed {
		t.Fatalf("transfers %d != completed metadata requests %d", res.SAN.Transfers, res.Completed)
	}
	// End-to-end latency includes the transfer, so it must exceed the
	// metadata-only mean.
	if res.SAN.EndToEnd.Mean() <= res.MeanLatency() {
		t.Fatalf("end-to-end %.3f not above metadata-only %.3f",
			res.SAN.EndToEnd.Mean(), res.MeanLatency())
	}
	if res.SAN.UtilizationInWindow <= 0 || res.SAN.UtilizationInWindow > 1 {
		t.Fatalf("in-window utilization %.3f out of range", res.SAN.UtilizationInWindow)
	}
}

// TestSANUnderutilizedBehindImbalancedMetadata checks the paper's
// motivating claim (Section 3): metadata imbalance leaves the SAN
// underutilized. Simple randomization queues a large share of requests
// behind the weakest metadata server, deferring their data transfers
// past the trace window, so the SAN's in-window utilization drops
// relative to a balanced metadata tier.
func TestSANUnderutilizedBehindImbalancedMetadata(t *testing.T) {
	tr := smallTrace(t, 33)
	util := func(build func(t *testing.T, tr *workload.Trace) policy.Placer) float64 {
		t.Helper()
		cfg := DefaultConfig(tr, build(t, tr))
		cfg.SAN = sanConfig()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.SAN.UtilizationInWindow
	}
	simple := util(func(t *testing.T, tr *workload.Trace) policy.Placer { return newSimplePolicy(t, tr) })
	balanced := util(func(t *testing.T, tr *workload.Trace) policy.Placer { return newPrescientPolicy(t, tr) })
	if simple >= balanced {
		t.Fatalf("SAN utilization under simple (%.4f) not below balanced metadata (%.4f)",
			simple, balanced)
	}
}
