package clustersim

import (
	"fmt"
	"testing"

	"anurand/internal/anu"
	"anurand/internal/hashx"
	"anurand/internal/policy"
	"anurand/internal/workload"
)

func closedFileSets(n int) []workload.FileSet {
	fs := make([]workload.FileSet, n)
	for i := range fs {
		fs[i] = workload.FileSet{Name: fmt.Sprintf("fs/closed/%02d", i), Weight: float64(i%5) + 1}
	}
	return fs
}

func closedConfig(t *testing.T, build func(fs []workload.FileSet) policy.Placer) ClosedConfig {
	t.Helper()
	fs := closedFileSets(20)
	return ClosedConfig{
		Seed:           1,
		Speeds:         []float64{1, 3, 5, 7, 9},
		Policy:         build(fs),
		FileSets:       fs,
		Clients:        60,
		ThinkTime:      2.0,
		MetadataDemand: 1.0,
		TuneInterval:   60,
		Duration:       3600,
	}
}

func buildClosedANU(t *testing.T) func(fs []workload.FileSet) policy.Placer {
	return func(fs []workload.FileSet) policy.Placer {
		p, err := policy.NewANU(hashx.NewFamily(42), fs, fiveServers(), anu.DefaultControllerConfig())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

func buildClosedSimple(t *testing.T) func(fs []workload.FileSet) policy.Placer {
	return func(fs []workload.FileSet) policy.Placer {
		p, err := policy.NewSimple(hashx.NewFamily(42), fs, fiveServers())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
}

func TestClosedValidate(t *testing.T) {
	cases := map[string]func(*ClosedConfig){
		"no servers":    func(c *ClosedConfig) { c.Speeds = nil },
		"nil policy":    func(c *ClosedConfig) { c.Policy = nil },
		"no file sets":  func(c *ClosedConfig) { c.FileSets = nil },
		"no clients":    func(c *ClosedConfig) { c.Clients = 0 },
		"neg think":     func(c *ClosedConfig) { c.ThinkTime = -1 },
		"zero demand":   func(c *ClosedConfig) { c.MetadataDemand = 0 },
		"zero interval": func(c *ClosedConfig) { c.TuneInterval = 0 },
		"zero duration": func(c *ClosedConfig) { c.Duration = 0 },
		"zero speed":    func(c *ClosedConfig) { c.Speeds = []float64{0} },
		"bad san":       func(c *ClosedConfig) { c.SAN = SANConfig{Enabled: true} },
	}
	for name, corrupt := range cases {
		cfg := closedConfig(t, buildClosedSimple(t))
		corrupt(&cfg)
		if _, err := RunClosed(cfg); err == nil {
			t.Errorf("RunClosed accepted config with %s", name)
		}
	}
}

func TestClosedRunBasics(t *testing.T) {
	cfg := closedConfig(t, buildClosedANU(t))
	res, err := RunClosed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no cycles completed")
	}
	if res.Throughput <= 0 {
		t.Fatal("zero throughput")
	}
	// Throughput cannot exceed the zero-latency bound
	// clients/thinkTime, nor the cluster's service capacity.
	maxByThink := float64(cfg.Clients) / cfg.ThinkTime
	if res.Throughput > maxByThink {
		t.Fatalf("throughput %.2f exceeds think-time bound %.2f", res.Throughput, maxByThink)
	}
	if res.MetadataLatency.N() == 0 {
		t.Fatal("no metadata latencies recorded")
	}
	if res.CycleLatency.Mean() < res.MetadataLatency.Mean() {
		t.Fatal("cycle latency below metadata latency")
	}
	if res.TuningRounds == 0 {
		t.Fatal("no tuning rounds")
	}
	if res.SANUtilization != 0 {
		t.Fatal("SAN utilization reported with SAN disabled")
	}
}

func TestClosedDeterministic(t *testing.T) {
	a, err := RunClosed(closedConfig(t, buildClosedANU(t)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunClosed(closedConfig(t, buildClosedANU(t)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.MetadataLatency.Mean() != b.MetadataLatency.Mean() {
		t.Fatalf("closed-loop run not deterministic: %d/%g vs %d/%g",
			a.Cycles, a.MetadataLatency.Mean(), b.Cycles, b.MetadataLatency.Mean())
	}
}

// TestClosedThroughputANUBeatsSimple is the structural version of
// Section 3's motivation: with closed-loop clients, metadata imbalance
// throttles cluster throughput, and ANU recovers it.
func TestClosedThroughputANUBeatsSimple(t *testing.T) {
	mkCfg := func(build func(fs []workload.FileSet) policy.Placer) ClosedConfig {
		cfg := closedConfig(t, build)
		cfg.Clients = 100
		cfg.ThinkTime = 1.0
		cfg.MetadataDemand = 0.15 // offered ~15 unit-speed on capacity 25 if unblocked
		return cfg
	}
	anuRes, err := RunClosed(mkCfg(buildClosedANU(t)))
	if err != nil {
		t.Fatal(err)
	}
	simpleRes, err := RunClosed(mkCfg(buildClosedSimple(t)))
	if err != nil {
		t.Fatal(err)
	}
	if anuRes.Throughput <= simpleRes.Throughput {
		t.Fatalf("ANU throughput %.2f not above simple's %.2f",
			anuRes.Throughput, simpleRes.Throughput)
	}
}

func TestClosedWithSAN(t *testing.T) {
	cfg := closedConfig(t, buildClosedANU(t))
	cfg.SAN = SANConfig{Enabled: true, Disks: 8, TransferDemand: 0.5}
	res, err := RunClosed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.SANUtilization <= 0 || res.SANUtilization > 1 {
		t.Fatalf("SAN utilization %.3f out of range", res.SANUtilization)
	}
	if res.CycleLatency.Mean() <= res.MetadataLatency.Mean() {
		t.Fatal("cycle latency should include the data transfer")
	}
}
