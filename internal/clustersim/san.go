package clustersim

import (
	"fmt"
	"math"
	"strconv"

	"anurand/internal/hashx"
	"anurand/internal/metrics"
	"anurand/internal/sim"
)

// SANConfig models the shared-disk data path of Figure 1: after a
// metadata request completes at a file server, the client fetches data
// directly from the shared disks across the storage area network. The
// paper's motivation for balancing the metadata tier is that "clients
// blocked on metadata may leave the high bandwidth SAN underutilized" —
// this model makes that claim measurable: metadata queueing delays the
// data transfers behind it, and the in-window SAN utilization drops.
type SANConfig struct {
	// Enabled turns the data path on; the zero value keeps the
	// simulation metadata-only, exactly as before.
	Enabled bool

	// Disks is the number of shared disks (each a FIFO station of unit
	// speed).
	Disks int

	// TransferDemand is the data-transfer work per request in
	// disk-seconds. Transfers for a file set stripe across disks by
	// hashing (fileset, request sequence).
	TransferDemand float64
}

// Validate reports the first nonsensical parameter.
func (c SANConfig) Validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Disks <= 0 {
		return fmt.Errorf("clustersim: SAN needs at least one disk")
	}
	if c.TransferDemand <= 0 || math.IsNaN(c.TransferDemand) || math.IsInf(c.TransferDemand, 0) {
		return fmt.Errorf("clustersim: invalid SAN transfer demand %g", c.TransferDemand)
	}
	return nil
}

// SANStats reports the data-path outcome of a run.
type SANStats struct {
	// Disks is the disk count.
	Disks int

	// Transfers is the number of data transfers completed (including
	// after the trace window, during drain).
	Transfers uint64

	// EndToEnd summarizes request arrival to data-transfer completion —
	// what a client actually experiences.
	EndToEnd metrics.Summary

	// BusyInWindow is the summed disk busy time accrued within the
	// trace window [0, Duration].
	BusyInWindow float64

	// UtilizationInWindow is BusyInWindow / (Disks * Duration): the
	// fraction of the SAN's capacity actually used while the workload
	// was offered. Metadata imbalance defers transfers past the window
	// and this drops — the paper's "underutilized SAN".
	UtilizationInWindow float64
}

// san is the live data-path state inside the runner.
type san struct {
	cfg    SANConfig
	eng    *sim.Engine
	family hashx.Family
	disks  []*sim.Resource
	stats  SANStats
	seq    uint64
	keyBuf []byte         // reusable striping-key scratch ("fs/seq")
	doneFn func(*sim.Job) // shared transfer-completion callback
}

// newSAN builds the disk pool on the runner's engine.
func newSAN(eng *sim.Engine, cfg SANConfig) *san {
	s := &san{cfg: cfg, eng: eng, family: hashx.NewFamily(0x5a4e)}
	for i := 0; i < cfg.Disks; i++ {
		s.disks = append(s.disks, sim.NewResource(eng, fmt.Sprintf("disk-%d", i), 1))
	}
	s.stats.Disks = cfg.Disks
	s.doneFn = func(j *sim.Job) {
		s.stats.Transfers++
		s.stats.EndToEnd.Add(s.eng.Now() - j.Stamp)
	}
	return s
}

// transfer dispatches the data transfer that follows a completed
// metadata request. arrive is the original request arrival, so EndToEnd
// captures the full client-visible latency. The striping key is
// formatted into a reused buffer and hashed with PrehashBytes —
// bit-identical to hashing fmt.Sprintf("%d/%d", fs, seq), without the
// two allocations.
func (s *san) transfer(fs int32, arrive float64) {
	s.seq++
	b := strconv.AppendInt(s.keyBuf[:0], int64(fs), 10)
	b = append(b, '/')
	b = strconv.AppendUint(b, s.seq, 10)
	s.keyBuf = b
	disk := s.disks[s.family.HashDigest(hashx.PrehashBytes(b), 0)%uint64(len(s.disks))]
	j := s.eng.AcquireJob()
	j.Demand = s.cfg.TransferDemand
	j.Stamp = arrive
	j.Done = s.doneFn
	disk.Submit(j)
}

// snapshotWindow records the in-window busy time; the runner schedules
// it at the trace end, before the drain continues.
func (s *san) snapshotWindow(duration float64) {
	var busy float64
	for _, d := range s.disks {
		busy += d.BusyTime()
	}
	s.stats.BusyInWindow = busy
	if duration > 0 && len(s.disks) > 0 {
		s.stats.UtilizationInWindow = busy / (float64(len(s.disks)) * duration)
	}
}
