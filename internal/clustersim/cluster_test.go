package clustersim

import (
	"math"
	"testing"

	"anurand/internal/anu"
	"anurand/internal/hashx"
	"anurand/internal/policy"
	"anurand/internal/workload"
)

// smallTrace generates a fast synthetic trace for integration tests.
func smallTrace(t *testing.T, seed uint64) *workload.Trace {
	t.Helper()
	cfg := workload.DefaultSynthetic()
	cfg.Seed = seed
	cfg.NumFileSets = 20
	cfg.Duration = 1800 // 15 tuning rounds
	cfg.TargetRequests = 8000
	tr, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func fiveServers() []policy.ServerID { return []policy.ServerID{0, 1, 2, 3, 4} }

func newANUPolicy(t *testing.T, tr *workload.Trace) *policy.ANU {
	t.Helper()
	p, err := policy.NewANU(hashx.NewFamily(42), tr.FileSets, fiveServers(), anu.DefaultControllerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newSimplePolicy(t *testing.T, tr *workload.Trace) *policy.Simple {
	t.Helper()
	p, err := policy.NewSimple(hashx.NewFamily(42), tr.FileSets, fiveServers())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newPrescientPolicy(t *testing.T, tr *workload.Trace) *policy.Prescient {
	t.Helper()
	p, err := policy.NewPrescient(tr.FileSets)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	tr := smallTrace(t, 1)
	good := DefaultConfig(tr, newSimplePolicy(t, tr))
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(*Config){
		"no servers":      func(c *Config) { c.Speeds = nil },
		"zero speed":      func(c *Config) { c.Speeds = []float64{0} },
		"NaN speed":       func(c *Config) { c.Speeds = []float64{math.NaN()} },
		"nil trace":       func(c *Config) { c.Trace = nil },
		"nil policy":      func(c *Config) { c.Policy = nil },
		"zero interval":   func(c *Config) { c.TuneInterval = 0 },
		"neg window":      func(c *Config) { c.ReportWindow = -1 },
		"neg flush":       func(c *Config) { c.MoveFlushTime = -1 },
		"neg cold":        func(c *Config) { c.ColdRequests = -1 },
		"neg runpast":     func(c *Config) { c.RunPast = -1 },
		"neg event time":  func(c *Config) { c.Events = []Event{{Time: -1, Kind: Fail}} },
		"bad event kind":  func(c *Config) { c.Events = []Event{{Time: 1, Kind: EventKind(99)}} },
		"comm zero speed": func(c *Config) { c.Events = []Event{{Time: 1, Kind: Commission, Server: 9}} },
	}
	for name, corrupt := range cases {
		cfg := DefaultConfig(tr, newSimplePolicy(t, tr))
		corrupt(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run accepted config with %s", name)
		}
	}
}

func TestRunCompletesAllRequests(t *testing.T) {
	tr := smallTrace(t, 2)
	cfg := DefaultConfig(tr, newSimplePolicy(t, tr))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != uint64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d requests", res.Completed, len(tr.Requests))
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d requests with all servers up", res.Dropped)
	}
	var served uint64
	for _, s := range res.Servers {
		served += s.Served
	}
	if served != res.Completed {
		t.Fatalf("per-server served %d != completed %d", served, res.Completed)
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, mk := range []struct {
		name  string
		build func(t *testing.T, tr *workload.Trace) policy.Placer
	}{
		{"simple", func(t *testing.T, tr *workload.Trace) policy.Placer { return newSimplePolicy(t, tr) }},
		{"anu", func(t *testing.T, tr *workload.Trace) policy.Placer { return newANUPolicy(t, tr) }},
		{"prescient", func(t *testing.T, tr *workload.Trace) policy.Placer { return newPrescientPolicy(t, tr) }},
	} {
		t.Run(mk.name, func(t *testing.T) {
			tr := smallTrace(t, 3)
			a, err := Run(DefaultConfig(tr, mk.build(t, tr)))
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(DefaultConfig(tr, mk.build(t, tr)))
			if err != nil {
				t.Fatal(err)
			}
			if a.MeanLatency() != b.MeanLatency() || a.Completed != b.Completed || a.TotalMoved != b.TotalMoved {
				t.Fatalf("non-deterministic run: %v vs %v", a, b)
			}
		})
	}
}

func TestTuningRoundCount(t *testing.T) {
	tr := smallTrace(t, 4)
	cfg := DefaultConfig(tr, newANUPolicy(t, tr))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := int(tr.Duration / cfg.TuneInterval)
	if res.TuningRounds != want {
		t.Fatalf("tuning rounds %d, want %d", res.TuningRounds, want)
	}
	if len(res.Moves) != want {
		t.Fatalf("move records %d, want %d", len(res.Moves), want)
	}
}

func TestSimpleNeverMoves(t *testing.T) {
	tr := smallTrace(t, 5)
	res, err := Run(DefaultConfig(tr, newSimplePolicy(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMoved != 0 {
		t.Fatalf("simple randomization moved %d file sets", res.TotalMoved)
	}
}

func TestANUMovesFrontLoaded(t *testing.T) {
	tr := smallTrace(t, 6)
	res, err := Run(DefaultConfig(tr, newANUPolicy(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMoved == 0 {
		t.Fatal("ANU never moved anything on a heterogeneous cluster")
	}
	// The first third of the rounds should carry more movement than
	// the last third (Figure 7's front-loading).
	third := len(res.Moves) / 3
	early, late := 0, 0
	for i, m := range res.Moves {
		if i < third {
			early += m.FileSetsMoved
		}
		if i >= 2*third {
			late += m.FileSetsMoved
		}
	}
	if early <= late {
		t.Fatalf("movement not front-loaded: first third %d, last third %d", early, late)
	}
}

func TestPolicyOrderingOnHeterogeneousCluster(t *testing.T) {
	// The paper's headline: prescient <= anu << simple in mean latency.
	tr := smallTrace(t, 7)
	run := func(p policy.Placer) float64 {
		res, err := Run(DefaultConfig(tr, p))
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency()
	}
	simple := run(newSimplePolicy(t, tr))
	anuLat := run(newANUPolicy(t, tr))
	prescient := run(newPrescientPolicy(t, tr))
	if !(prescient < anuLat) {
		t.Errorf("prescient (%.3f) should beat ANU (%.3f)", prescient, anuLat)
	}
	if !(anuLat < simple/3) {
		t.Errorf("ANU (%.3f) should beat simple (%.3f) by a wide margin", anuLat, simple)
	}
}

func TestFailureReroutesQueuedWork(t *testing.T) {
	tr := smallTrace(t, 8)
	cfg := DefaultConfig(tr, newANUPolicy(t, tr))
	cfg.Events = []Event{{Time: 600, Kind: Fail, Server: 4}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != uint64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d after failure", res.Completed, len(tr.Requests))
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d requests despite four live servers", res.Dropped)
	}
	// The failed server must serve nothing after t=600: its series is
	// empty in later windows.
	s := res.Servers[4]
	for w := 7; w < s.Series.Len(); w++ {
		if s.Series.At(w).N() > 0 {
			t.Fatalf("failed server completed requests in window %d", w)
		}
	}
}

func TestFailureAndRecovery(t *testing.T) {
	tr := smallTrace(t, 9)
	cfg := DefaultConfig(tr, newANUPolicy(t, tr))
	cfg.Events = []Event{
		{Time: 400, Kind: Fail, Server: 3},
		{Time: 1000, Kind: Recover, Server: 3},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != uint64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d", res.Completed, len(tr.Requests))
	}
	s := res.Servers[3]
	lateServed := uint64(0)
	for w := 9; w < s.Series.Len(); w++ {
		lateServed += s.Series.At(w).N()
	}
	if lateServed == 0 {
		t.Fatal("recovered server never served again")
	}
}

func TestCommissionAddsCapacity(t *testing.T) {
	tr := smallTrace(t, 10)
	cfg := DefaultConfig(tr, newANUPolicy(t, tr))
	cfg.Events = []Event{{Time: 600, Kind: Commission, Server: 5, Speed: 9}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := res.Servers[5]
	if !ok {
		t.Fatal("commissioned server missing from results")
	}
	if s.Served == 0 {
		t.Fatal("commissioned server never served")
	}
}

func TestDecommissionRemovesServer(t *testing.T) {
	tr := smallTrace(t, 11)
	cfg := DefaultConfig(tr, newANUPolicy(t, tr))
	cfg.Events = []Event{{Time: 600, Kind: Decommission, Server: 2}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != uint64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d after decommission", res.Completed, len(tr.Requests))
	}
	s := res.Servers[2]
	for w := 7; w < s.Series.Len(); w++ {
		if s.Series.At(w).N() > 0 {
			t.Fatalf("decommissioned server served in window %d", w)
		}
	}
}

func TestAllServersFailDropsRequests(t *testing.T) {
	tr := smallTrace(t, 12)
	cfg := DefaultConfig(tr, newANUPolicy(t, tr))
	for i := 0; i < 5; i++ {
		cfg.Events = append(cfg.Events, Event{Time: 300, Kind: Fail, Server: ServerID(i)})
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped == 0 {
		t.Fatal("no drops with every server down")
	}
	if res.Completed+res.Dropped != uint64(len(tr.Requests)) {
		t.Fatalf("completed %d + dropped %d != %d", res.Completed, res.Dropped, len(tr.Requests))
	}
}

func TestMoveCostsSlowTheCluster(t *testing.T) {
	tr := smallTrace(t, 13)
	base := DefaultConfig(tr, newANUPolicy(t, tr))
	base.MoveFlushTime = 0
	base.ColdPenalty = 1
	cheap, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	dear := DefaultConfig(tr, newANUPolicy(t, tr))
	dear.MoveFlushTime = 20
	dear.ColdPenalty = 10
	dear.ColdRequests = 20
	costly, err := Run(dear)
	if err != nil {
		t.Fatal(err)
	}
	if costly.MeanLatency() <= cheap.MeanLatency() {
		t.Fatalf("movement costs had no effect: %.3f vs %.3f", costly.MeanLatency(), cheap.MeanLatency())
	}
}

func TestRedirectOnMoveHelpsTransient(t *testing.T) {
	tr := smallTrace(t, 14)
	on := DefaultConfig(tr, newANUPolicy(t, tr))
	resOn, err := Run(on)
	if err != nil {
		t.Fatal(err)
	}
	off := DefaultConfig(tr, newANUPolicy(t, tr))
	off.RedirectOnMove = false
	resOff, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	// Redirecting queued work away from overloaded shedding servers
	// should not hurt, and usually helps the convergence transient.
	if resOn.MeanLatency() > resOff.MeanLatency()*1.2 {
		t.Fatalf("redirect-on-move hurt badly: %.3f vs %.3f", resOn.MeanLatency(), resOff.MeanLatency())
	}
}

func TestConsistencySpread(t *testing.T) {
	tr := smallTrace(t, 15)
	res, err := Run(DefaultConfig(tr, newPrescientPolicy(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	spread := res.ConsistencySpread(50)
	if spread == 0 {
		t.Fatal("spread = 0: no servers qualified")
	}
	if spread > 8 {
		t.Fatalf("prescient spread %.2f implausibly wide", spread)
	}
}

func TestResultAccessors(t *testing.T) {
	tr := smallTrace(t, 16)
	res, err := Run(DefaultConfig(tr, newSimplePolicy(t, tr)))
	if err != nil {
		t.Fatal(err)
	}
	ids := res.ServerIDs()
	if len(ids) != 5 {
		t.Fatalf("ServerIDs = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("ServerIDs not ascending")
		}
	}
	means := res.PerServerMeans()
	if len(means) != 5 {
		t.Fatalf("PerServerMeans has %d entries", len(means))
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
	if res.SharedStateBytes <= 0 {
		t.Fatal("missing shared state size")
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		Fail: "fail", Recover: "recover", Commission: "commission",
		Decommission: "decommission", EventKind(42): "EventKind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestVPGranularityEndToEnd(t *testing.T) {
	// Figure 8's direction on a small run: very coarse VPs must not
	// beat fine VPs.
	tr := smallTrace(t, 17)
	run := func(numVP int) float64 {
		p, err := policy.NewVirtualProcessor(hashx.NewFamily(42), tr.FileSets, numVP)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(DefaultConfig(tr, p))
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanLatency()
	}
	coarse, fine := run(3), run(20)
	if fine > coarse*1.25 {
		t.Fatalf("fine-grained VPs (%.3f) much worse than coarse (%.3f)", fine, coarse)
	}
}

func TestBacklogAwareReportsChangeTuning(t *testing.T) {
	tr := smallTrace(t, 40)
	plain := DefaultConfig(tr, newANUPolicy(t, tr))
	a, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	aware := DefaultConfig(tr, newANUPolicy(t, tr))
	aware.BacklogAwareReports = true
	b, err := Run(aware)
	if err != nil {
		t.Fatal(err)
	}
	// The leading indicator must actually change the feedback loop's
	// trajectory (identical results would mean the flag is dead).
	if a.TotalMoved == b.TotalMoved && a.MeanLatency() == b.MeanLatency() {
		t.Fatal("backlog-aware reports had no effect")
	}
	// And both runs stay sane.
	if b.Completed != uint64(len(tr.Requests)) {
		t.Fatalf("aware run completed %d of %d", b.Completed, len(tr.Requests))
	}
}
