// Package hashx provides the agreed-upon family of hash functions that
// ANU randomization re-hashes with. The paper requires that every node
// share a family h_0, h_1, h_2, … of independent hash functions over
// file-set names: a name whose h_r offset lands in an unmapped region of
// the unit interval is re-hashed with h_{r+1} until it lands in a mapped
// region (expected two probes under half occupancy).
//
// Each family member is FNV-1a over the key, mixed with a per-round
// tweak derived from the family seed through the splitmix64 finalizer.
// FNV-1a gives a fast, well-distributed 64-bit digest of the name and
// the finalizer decorrelates the rounds, so the probes behave like
// independent uniform draws — the property the half-occupancy analysis
// (miss probability 2^-r after r rounds) relies on.
package hashx

import "anurand/internal/rng"

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Family is a deterministic family of 64-bit hash functions. The zero
// value uses seed zero and is valid; all nodes of a cluster must
// construct their Family with the same seed to address the same
// placement.
type Family struct {
	seed uint64
}

// NewFamily returns the hash family identified by seed.
func NewFamily(seed uint64) Family { return Family{seed: seed} }

// Seed returns the family's seed.
func (f Family) Seed() uint64 { return f.seed }

// Hash returns h_round(key), the round-th member of the family applied
// to key.
func (f Family) Hash(key string, round int) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	// Derive a per-round tweak from the seed, then mix it with the
	// digest so rounds are decorrelated even for similar keys.
	tweak := rng.Mix64(f.seed + uint64(round)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019)
	return rng.Mix64(h ^ tweak)
}

// Unit returns h_round(key) mapped onto [0, unit) ticks of a discrete
// unit interval. unit must be a power of two (the interval package uses
// 1<<62); the top bits of the hash are kept, which preserves uniformity.
func (f Family) Unit(key string, round int, unit uint64) uint64 {
	if unit == 0 || unit&(unit-1) != 0 {
		panic("hashx: Unit requires a power-of-two interval size")
	}
	shift := uint(64)
	for u := unit; u > 1; u >>= 1 {
		shift--
	}
	return f.Hash(key, round) >> shift
}
