// Package hashx provides the agreed-upon family of hash functions that
// ANU randomization re-hashes with. The paper requires that every node
// share a family h_0, h_1, h_2, … of independent hash functions over
// file-set names: a name whose h_r offset lands in an unmapped region of
// the unit interval is re-hashed with h_{r+1} until it lands in a mapped
// region (expected two probes under half occupancy).
//
// Each family member is FNV-1a over the key, mixed with a per-round
// tweak derived from the family seed through the splitmix64 finalizer.
// FNV-1a gives a fast, well-distributed 64-bit digest of the name and
// the finalizer decorrelates the rounds, so the probes behave like
// independent uniform draws — the property the half-occupancy analysis
// (miss probability 2^-r after r rounds) relies on.
//
// Because the FNV digest does not depend on the round and the tweak does
// not depend on the key, a lookup's re-hash chain can hash the key once
// (Prehash) and derive every probe from the digest and a precomputed
// tweak table — the contention-free hot path the placement layer uses.
// Both paths produce bit-identical values: placement is an on-the-wire
// agreement between nodes, so h_r(key) can never change.
package hashx

import (
	"math/bits"

	"anurand/internal/rng"
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211

	// tweakRounds is the number of per-round tweaks precomputed at
	// family construction. It matches the placement layer's probe budget
	// (anu.DefaultMaxProbes); later rounds fall back to deriving the
	// tweak on the fly, with identical results.
	tweakRounds = 64

	// tweakStep and tweakSalt derive the round-r tweak as
	// Mix64(seed + r*tweakStep + tweakSalt). These constants are part of
	// the wire agreement; changing them re-places every file set.
	tweakStep = 0x9e3779b97f4a7c15
	tweakSalt = 0x632be59bd9b4e019
)

// Digest is the round-independent part of a family hash: the FNV-1a
// digest of the key. Computing it once and probing with HashDigest or
// UnitDigest avoids re-reading the key on every re-hash round.
type Digest uint64

// Family is a deterministic family of 64-bit hash functions. The zero
// value uses seed zero and is valid (it derives tweaks on demand); all
// nodes of a cluster must construct their Family with the same seed to
// address the same placement. Families built with NewFamily carry a
// precomputed per-round tweak table and are cheap to copy (the table is
// shared, immutable).
type Family struct {
	seed   uint64
	tweaks *[tweakRounds]uint64
}

// NewFamily returns the hash family identified by seed.
func NewFamily(seed uint64) Family {
	t := new([tweakRounds]uint64)
	for r := range t {
		t[r] = deriveTweak(seed, r)
	}
	return Family{seed: seed, tweaks: t}
}

// Seed returns the family's seed.
func (f Family) Seed() uint64 { return f.seed }

// deriveTweak computes the per-round tweak from first principles — the
// slow path the table caches.
func deriveTweak(seed uint64, round int) uint64 {
	return rng.Mix64(seed + uint64(round)*tweakStep + tweakSalt)
}

// tweak returns the round's tweak, from the table when available.
func (f Family) tweak(round int) uint64 {
	if f.tweaks != nil && uint(round) < tweakRounds {
		return f.tweaks[round]
	}
	return deriveTweak(f.seed, round)
}

// Prehash returns the round-independent digest of key, to be combined
// with any round via HashDigest or UnitDigest.
func Prehash(key string) Digest {
	h := uint64(fnvOffset)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return Digest(h)
}

// PrehashBytes is Prehash over a byte slice — bit-identical to Prehash
// on string(b), without materializing the string. Callers that format a
// key into a reusable buffer (the SAN's "fs/seq" striping key) hash it
// allocation-free.
func PrehashBytes(b []byte) Digest {
	h := uint64(fnvOffset)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return Digest(h)
}

// Hash returns h_round(key), the round-th member of the family applied
// to key.
func (f Family) Hash(key string, round int) uint64 {
	return f.HashDigest(Prehash(key), round)
}

// HashDigest returns h_round for a key whose digest was computed with
// Prehash. It is bit-identical to Hash on the original key.
func (f Family) HashDigest(d Digest, round int) uint64 {
	// Mix the per-round tweak with the digest so rounds are decorrelated
	// even for similar keys.
	return rng.Mix64(uint64(d) ^ f.tweak(round))
}

// Unit returns h_round(key) mapped onto [0, unit) ticks of a discrete
// unit interval. unit must be a power of two (the interval package uses
// 1<<62); the top bits of the hash are kept, which preserves uniformity.
func (f Family) Unit(key string, round int, unit uint64) uint64 {
	return f.HashDigest(Prehash(key), round) >> unitShift(unit)
}

// UnitDigest is Unit for a pre-hashed key.
func (f Family) UnitDigest(d Digest, round int, unit uint64) uint64 {
	return f.HashDigest(d, round) >> unitShift(unit)
}

// unitShift returns the right-shift that maps a 64-bit hash onto
// [0, unit) for power-of-two unit: 64 - log2(unit).
func unitShift(unit uint64) uint {
	if unit == 0 || unit&(unit-1) != 0 {
		panic("hashx: Unit requires a power-of-two interval size")
	}
	return uint(65 - bits.Len64(unit))
}
