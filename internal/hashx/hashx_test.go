package hashx

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"anurand/internal/rng"
)

func TestHashDeterministic(t *testing.T) {
	f := NewFamily(7)
	g := NewFamily(7)
	for round := 0; round < 5; round++ {
		for _, key := range []string{"", "a", "fileset-001", "/usr/share/doc"} {
			if f.Hash(key, round) != g.Hash(key, round) {
				t.Fatalf("families with equal seeds disagree on (%q, %d)", key, round)
			}
		}
	}
}

func TestHashRoundsDiffer(t *testing.T) {
	f := NewFamily(3)
	key := "fileset-042"
	seen := map[uint64]int{}
	for round := 0; round < 64; round++ {
		h := f.Hash(key, round)
		if prev, dup := seen[h]; dup {
			t.Fatalf("rounds %d and %d collide for key %q", prev, round, key)
		}
		seen[h] = round
	}
}

func TestHashSeedsDiffer(t *testing.T) {
	a, b := NewFamily(1), NewFamily(2)
	same := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("fs-%d", i)
		if a.Hash(key, 0) == b.Hash(key, 0) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("families with different seeds collided on %d/1000 keys", same)
	}
}

func TestHashKeysDiffer(t *testing.T) {
	f := NewFamily(0)
	seen := map[uint64]string{}
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("fileset-%d", i)
		h := f.Hash(key, 0)
		if prev, dup := seen[h]; dup {
			t.Fatalf("64-bit collision between %q and %q (astronomically unlikely if well mixed)", prev, key)
		}
		seen[h] = key
	}
}

func TestUnitRangeAndUniformity(t *testing.T) {
	f := NewFamily(11)
	const unit = uint64(1) << 62
	const buckets = 16
	counts := make([]int, buckets)
	const n = 100000
	for i := 0; i < n; i++ {
		u := f.Unit(fmt.Sprintf("key-%d", i), 0, unit)
		if u >= unit {
			t.Fatalf("Unit returned %d >= %d", u, unit)
		}
		counts[u/(unit/buckets)]++
	}
	want := float64(n) / buckets
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, expected ~%.0f", i, c, want)
		}
	}
}

func TestUnitPanicsOnNonPowerOfTwo(t *testing.T) {
	const wantMsg = "hashx: Unit requires a power-of-two interval size"
	for _, unit := range []uint64{0, 3, 1000, 1<<62 + 1} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("Unit(unit=%d) did not panic", unit)
				}
				if msg, ok := r.(string); !ok || msg != wantMsg {
					t.Fatalf("Unit(unit=%d) panic message %q, want %q", unit, r, wantMsg)
				}
			}()
			NewFamily(0).Unit("x", 0, unit)
		}()
	}
}

// refHash is the original, from-first-principles implementation of the
// family (FNV-1a digest, per-round splitmix64 tweak, final mix). The
// production code now routes through a precomputed tweak table and a
// reusable key digest; this reference pins the agreement.
func refHash(seed uint64, key string, round int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	tweak := rng.Mix64(seed + uint64(round)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019)
	return rng.Mix64(h ^ tweak)
}

// refUnit is the original Unit implementation with its shift-search
// loop.
func refUnit(seed uint64, key string, round int, unit uint64) uint64 {
	shift := uint(64)
	for u := unit; u > 1; u >>= 1 {
		shift--
	}
	return refHash(seed, key, round) >> shift
}

// TestHashGoldenEquivalence asserts the tweak-table fast path is
// bit-identical to the reference implementation for seeds {0, 1,
// random} across rounds 0..63 (the precomputed range) and a few rounds
// beyond it (the derive-on-demand fallback). Placement compatibility is
// an on-the-wire invariant: a single differing bit moves file sets
// between servers mid-upgrade.
func TestHashGoldenEquivalence(t *testing.T) {
	randomSeed := rand.Uint64()
	seeds := []uint64{0, 1, randomSeed}
	keys := []string{"", "a", "fileset-001", "/usr/share/doc", "\x00\xff"}
	units := []uint64{1, 2, 1 << 10, 1 << 62, 1 << 63}
	for _, seed := range seeds {
		f := NewFamily(seed)
		for round := 0; round < 70; round++ {
			for _, key := range keys {
				d := Prehash(key)
				want := refHash(seed, key, round)
				if got := f.Hash(key, round); got != want {
					t.Fatalf("seed %#x: Hash(%q, %d) = %#x, want %#x", seed, key, round, got, want)
				}
				if got := f.HashDigest(d, round); got != want {
					t.Fatalf("seed %#x: HashDigest(%q, %d) = %#x, want %#x", seed, key, round, got, want)
				}
				for _, unit := range units {
					wantU := refUnit(seed, key, round, unit)
					if got := f.Unit(key, round, unit); got != wantU {
						t.Fatalf("seed %#x: Unit(%q, %d, %d) = %d, want %d", seed, key, round, unit, got, wantU)
					}
					if got := f.UnitDigest(d, round, unit); got != wantU {
						t.Fatalf("seed %#x: UnitDigest(%q, %d, %d) = %d, want %d", seed, key, round, unit, got, wantU)
					}
				}
			}
		}
	}
}

// TestZeroValueFamilyEquivalence pins the documented contract that the
// zero value Family (no tweak table) behaves exactly like
// NewFamily(0).
func TestZeroValueFamilyEquivalence(t *testing.T) {
	var zero Family
	built := NewFamily(0)
	for round := 0; round < 8; round++ {
		for _, key := range []string{"", "x", "fileset-3141"} {
			if zero.Hash(key, round) != built.Hash(key, round) {
				t.Fatalf("zero-value Family diverges from NewFamily(0) on (%q, %d)", key, round)
			}
		}
	}
}

func TestUnitSmallIntervals(t *testing.T) {
	f := NewFamily(5)
	for _, unit := range []uint64{1, 2, 4, 1 << 10, 1 << 62, 1 << 63} {
		for i := 0; i < 100; i++ {
			if u := f.Unit(fmt.Sprintf("k%d", i), i%4, unit); u >= unit {
				t.Fatalf("Unit(%d) = %d out of range", unit, u)
			}
		}
	}
}

// TestRoundIndependence verifies the property the half-occupancy
// analysis depends on: conditioned on h_0 landing in the lower half,
// h_1 still lands in the lower half about half the time.
func TestRoundIndependence(t *testing.T) {
	f := NewFamily(9)
	const unit = uint64(1) << 62
	half := unit / 2
	lower0, both := 0, 0
	const n = 100000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("fs-%d", i)
		if f.Unit(key, 0, unit) < half {
			lower0++
			if f.Unit(key, 1, unit) < half {
				both++
			}
		}
	}
	condProb := float64(both) / float64(lower0)
	if math.Abs(condProb-0.5) > 0.02 {
		t.Fatalf("P(h1 lower | h0 lower) = %.3f, want ~0.5 (rounds correlated)", condProb)
	}
}

func TestHashPropertyStableUnderQuick(t *testing.T) {
	f := NewFamily(123)
	prop := func(key string, round uint8) bool {
		r := int(round % 16)
		return f.Hash(key, r) == f.Hash(key, r)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHash(b *testing.B) {
	f := NewFamily(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = f.Hash("fileset-0123456789", i&3)
	}
	_ = sink
}
