// Package migrate defines the crash-safe state machine that drives a
// live placement-strategy cutover (e.g. ANU → chord-bounded) without
// restarting the cluster or dropping a lookup.
//
// A migration walks four phases:
//
//	Idle → Proposed → DualTag → Committed
//	            \________\→ Aborted
//
// The delegate proposes a migration, collects a quorum of
// acknowledgements, opens a dual-tag window in which every node keeps
// serving lock-free lookups from the old placement while a snapshot of
// the new strategy warms in the background, and finally commits by
// bumping the view epoch and installing the warm snapshot through the
// ordinary (epoch, round) install fence. Any failure — quorum loss,
// timeout, tag decode error, re-election mid-window — aborts the
// migration and leaves the old placement serving untouched.
//
// Every phase transition is journaled as a Record so a crash-restart
// recovers the exact phase. Records are self-describing byte payloads
// (magic "MIG1") that travel both in the WAL — alongside, and
// distinguishable from, tagged placement snapshots — and as the
// payloads of the cluster's migration protocol messages. This package
// is pure codec + state machine; the cluster runtime owns timers,
// quorum counting, and the actual snapshot publish.
package migrate

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Phase is a state of the migration state machine.
type Phase uint8

const (
	// Idle: no migration in flight. Never journaled; it is the
	// implied state when the newest migration record is terminal.
	Idle Phase = iota
	// Proposed: the delegate has announced the migration and is
	// collecting acknowledgements. The data plane is untouched.
	Proposed
	// DualTag: the node holds a warm snapshot of the target strategy
	// and will accept installs carrying either the old or the new
	// strategy tag. Lookups still serve from the old placement.
	DualTag
	// Committed: the warm snapshot was installed under a bumped
	// epoch; the migration is complete. Terminal.
	Committed
	// Aborted: the migration was rolled back; the old placement
	// never stopped serving. Terminal.
	Aborted
)

// String returns the phase name used in logs, stats, and tests.
func (p Phase) String() string {
	switch p {
	case Idle:
		return "idle"
	case Proposed:
		return "proposed"
	case DualTag:
		return "dual-tag"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// Terminal reports whether the phase ends a migration.
func (p Phase) Terminal() bool { return p == Committed || p == Aborted }

// InFlight reports whether the phase names a migration that must be
// resumed (or rolled back) after a crash.
func (p Phase) InFlight() bool { return p == Proposed || p == DualTag }

// ValidNext reports whether the state machine permits moving from p to
// next. Abort is reachable from both in-flight phases; commit only
// from the dual-tag window.
func (p Phase) ValidNext(next Phase) bool {
	switch p {
	case Idle:
		return next == Proposed
	case Proposed:
		return next == DualTag || next == Aborted
	case DualTag:
		return next == Committed || next == Aborted
	default: // terminal phases restart from Idle
		return next == Proposed
	}
}

// Record is one journaled (and wire-carried) migration event.
//
// ID identifies the migration attempt: the proposing delegate stamps
// it from its (epoch, sequence) so concurrent or retried attempts
// cannot be confused. From and To are placement-strategy names as
// registered in internal/placement. Snapshot is only populated on
// DualTag records: the tagged encoding of the warm target placement,
// so a node that crashes inside the window can restore the exact warm
// state it acknowledged.
type Record struct {
	Phase    Phase
	ID       uint64
	From     string
	To       string
	Snapshot []byte
}

// Encoding layout (all little-endian):
//
//	magic    u32   "MIG1"
//	version  u8    = 1
//	phase    u8
//	id       u64
//	fromLen  u8    | from bytes
//	toLen    u8    | to bytes
//	snapLen  u32   | snapshot bytes
//
// The magic distinguishes migration records from tagged placement
// snapshots ("ANU1" raw maps and "PLC1" containers) sharing the same
// WAL, mirroring how the placement codec sniffs its own containers.
const (
	// Magic is the little-endian u32 spelling "MIG1".
	Magic = uint32('M') | uint32('I')<<8 | uint32('G')<<16 | uint32('1')<<24

	recordVersion = 1
	headerLen     = 4 + 1 + 1 + 8 // magic, version, phase, id
	maxNameLen    = 255
	maxSnapLen    = 1 << 26 // matches the journal's frame ceiling
)

var (
	// ErrNotRecord reports bytes that do not start with the MIG1
	// magic — i.e. some other record class entirely.
	ErrNotRecord = errors.New("migrate: not a migration record")
)

// IsRecord reports whether b carries the migration-record magic. It
// is how the journal classifies WAL payloads without decoding them.
func IsRecord(b []byte) bool {
	return len(b) >= 4 && binary.LittleEndian.Uint32(b) == Magic
}

// Validate checks the structural invariants every record must hold,
// whether it came from the local API or off the wire.
func (r Record) Validate() error {
	if r.Phase == Idle || r.Phase > Aborted {
		return fmt.Errorf("migrate: phase %s is not journalable", r.Phase)
	}
	if r.From == "" || r.To == "" {
		return errors.New("migrate: empty strategy name")
	}
	if r.From == r.To {
		return fmt.Errorf("migrate: from and to are both %q", r.From)
	}
	if len(r.From) > maxNameLen || len(r.To) > maxNameLen {
		return errors.New("migrate: strategy name too long")
	}
	if len(r.Snapshot) > maxSnapLen {
		return fmt.Errorf("migrate: snapshot %d bytes exceeds limit", len(r.Snapshot))
	}
	if r.Phase != DualTag && len(r.Snapshot) != 0 {
		return fmt.Errorf("migrate: %s record carries a snapshot", r.Phase)
	}
	return nil
}

// Encode serialises the record. It panics on records that fail
// Validate — encoding an invalid record is a programming error, the
// same contract placement.EncodeTagged keeps.
func (r Record) Encode() []byte {
	if err := r.Validate(); err != nil {
		panic(err)
	}
	b := make([]byte, 0, headerLen+2+len(r.From)+len(r.To)+4+len(r.Snapshot))
	b = binary.LittleEndian.AppendUint32(b, Magic)
	b = append(b, recordVersion, byte(r.Phase))
	b = binary.LittleEndian.AppendUint64(b, r.ID)
	b = append(b, byte(len(r.From)))
	b = append(b, r.From...)
	b = append(b, byte(len(r.To)))
	b = append(b, r.To...)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(r.Snapshot)))
	b = append(b, r.Snapshot...)
	return b
}

// Decode parses a migration record. Bytes without the MIG1 magic
// return ErrNotRecord (so callers can fall through to other record
// classes); anything else malformed is a hard error. The returned
// record always passes Validate.
func Decode(b []byte) (Record, error) {
	if !IsRecord(b) {
		return Record{}, ErrNotRecord
	}
	if len(b) < headerLen {
		return Record{}, errors.New("migrate: truncated record header")
	}
	if v := b[4]; v != recordVersion {
		return Record{}, fmt.Errorf("migrate: unsupported record version %d", v)
	}
	rec := Record{
		Phase: Phase(b[5]),
		ID:    binary.LittleEndian.Uint64(b[6:14]),
	}
	rest := b[headerLen:]
	var err error
	if rec.From, rest, err = takeString(rest); err != nil {
		return Record{}, fmt.Errorf("migrate: from: %w", err)
	}
	if rec.To, rest, err = takeString(rest); err != nil {
		return Record{}, fmt.Errorf("migrate: to: %w", err)
	}
	if len(rest) < 4 {
		return Record{}, errors.New("migrate: truncated snapshot length")
	}
	snapLen := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint64(snapLen) > maxSnapLen {
		return Record{}, fmt.Errorf("migrate: snapshot length %d exceeds limit", snapLen)
	}
	if uint64(len(rest)) != uint64(snapLen) {
		return Record{}, fmt.Errorf("migrate: snapshot length %d, have %d trailing bytes", snapLen, len(rest))
	}
	if snapLen > 0 {
		rec.Snapshot = append([]byte(nil), rest...)
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 1 {
		return "", nil, errors.New("truncated length byte")
	}
	n := int(b[0])
	b = b[1:]
	if n == 0 {
		return "", nil, errors.New("empty name")
	}
	if len(b) < n {
		return "", nil, errors.New("truncated name bytes")
	}
	return string(b[:n]), b[n:], nil
}
