package migrate

import (
	"bytes"
	"strings"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Phase: Proposed, ID: 1, From: "anu", To: "chord-bounded"},
		{Phase: DualTag, ID: 42, From: "anu", To: "chord", Snapshot: []byte{0xde, 0xad, 0xbe, 0xef}},
		{Phase: Committed, ID: 1<<63 + 7, From: "chord-bounded", To: "anu"},
		{Phase: Aborted, ID: 9, From: "chord", To: "anu"},
	}
	for _, want := range recs {
		b := want.Encode()
		if !IsRecord(b) {
			t.Fatalf("IsRecord(%s encode) = false", want.Phase)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%s): %v", want.Phase, err)
		}
		if got.Phase != want.Phase || got.ID != want.ID || got.From != want.From || got.To != want.To {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
		if !bytes.Equal(got.Snapshot, want.Snapshot) {
			t.Fatalf("round trip snapshot: got %x want %x", got.Snapshot, want.Snapshot)
		}
	}
}

func TestDecodeRejectsForeignMagic(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2}, []byte("ANU1xxxx"), []byte("PLC1xxxx"), []byte("....")} {
		if IsRecord(b) {
			t.Fatalf("IsRecord(%q) = true", b)
		}
		if _, err := Decode(b); err != ErrNotRecord {
			t.Fatalf("Decode(%q) err = %v, want ErrNotRecord", b, err)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := Record{Phase: DualTag, ID: 3, From: "anu", To: "chord", Snapshot: []byte("warm")}.Encode()
	cases := map[string][]byte{
		"truncated header":   good[:8],
		"bad version":        append(append([]byte{}, good[:4]...), append([]byte{99}, good[5:]...)...),
		"truncated names":    good[:15],
		"truncated snapshot": good[:len(good)-1],
		"trailing garbage":   append(append([]byte{}, good...), 0),
	}
	// Phase byte outside the journalable range.
	badPhase := append([]byte{}, good...)
	badPhase[5] = 0
	cases["idle phase"] = badPhase
	// A snapshot on a non-DualTag record violates Validate.
	snapOnCommit := append([]byte{}, good...)
	snapOnCommit[5] = byte(Committed)
	cases["snapshot on committed"] = snapOnCommit

	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: Decode accepted %x", name, b)
		} else if err == ErrNotRecord {
			t.Errorf("%s: got ErrNotRecord, want a hard decode error", name)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Record{
		{Phase: Proposed, From: "", To: "chord"},
		{Phase: Proposed, From: "anu", To: ""},
		{Phase: Proposed, From: "anu", To: "anu"},
		{Phase: Idle, From: "anu", To: "chord"},
		{Phase: Proposed, From: "anu", To: "chord", Snapshot: []byte{1}},
		{Phase: Proposed, From: strings.Repeat("x", 256), To: "chord"},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, r)
		}
	}
	if err := (Record{Phase: DualTag, From: "anu", To: "chord", Snapshot: []byte{1}}).Validate(); err != nil {
		t.Errorf("valid dual-tag record rejected: %v", err)
	}
}

func TestEncodePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Encode of invalid record did not panic")
		}
	}()
	Record{Phase: Idle, From: "a", To: "b"}.Encode()
}

func TestPhaseMachine(t *testing.T) {
	allowed := map[Phase][]Phase{
		Idle:      {Proposed},
		Proposed:  {DualTag, Aborted},
		DualTag:   {Committed, Aborted},
		Committed: {Proposed},
		Aborted:   {Proposed},
	}
	phases := []Phase{Idle, Proposed, DualTag, Committed, Aborted}
	for _, from := range phases {
		ok := map[Phase]bool{}
		for _, p := range allowed[from] {
			ok[p] = true
		}
		for _, to := range phases {
			if got := from.ValidNext(to); got != ok[to] {
				t.Errorf("ValidNext(%s → %s) = %v, want %v", from, to, got, ok[to])
			}
		}
	}
	if !Proposed.InFlight() || !DualTag.InFlight() || Committed.InFlight() || Aborted.InFlight() || Idle.InFlight() {
		t.Error("InFlight classification wrong")
	}
	if !Committed.Terminal() || !Aborted.Terminal() || Proposed.Terminal() {
		t.Error("Terminal classification wrong")
	}
	if Phase(99).String() != "phase(99)" {
		t.Errorf("unknown phase String = %q", Phase(99).String())
	}
}
