package migrate

import (
	"bytes"
	"testing"
)

// FuzzMigrationRecord drives Decode with arbitrary bytes. Invariants:
// no panic; a successful decode yields a record that passes Validate
// and re-encodes to decode equal (the codec is canonical); bytes
// without the magic always return ErrNotRecord.
func FuzzMigrationRecord(f *testing.F) {
	f.Add(Record{Phase: Proposed, ID: 1, From: "anu", To: "chord-bounded"}.Encode())
	f.Add(Record{Phase: DualTag, ID: 7, From: "anu", To: "chord", Snapshot: []byte("warm-bytes")}.Encode())
	f.Add(Record{Phase: Committed, ID: 2, From: "chord", To: "anu"}.Encode())
	f.Add(Record{Phase: Aborted, ID: 3, From: "a", To: "b"}.Encode())
	f.Add([]byte("MIG1"))
	f.Add([]byte("MIG1\x01\x02garbage"))
	f.Add([]byte("ANU1not-a-migration-record"))
	torn := Record{Phase: DualTag, ID: 9, From: "anu", To: "chord", Snapshot: bytes.Repeat([]byte{0xab}, 64)}.Encode()
	f.Add(torn[:len(torn)/2])

	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := Decode(b)
		if err != nil {
			if err == ErrNotRecord && IsRecord(b) {
				t.Fatalf("ErrNotRecord for bytes carrying the magic: %x", b)
			}
			return
		}
		if !IsRecord(b) {
			t.Fatalf("decode succeeded without magic: %x", b)
		}
		if verr := rec.Validate(); verr != nil {
			t.Fatalf("decoded record fails Validate: %v", verr)
		}
		again, err := Decode(rec.Encode())
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if again.Phase != rec.Phase || again.ID != rec.ID || again.From != rec.From || again.To != rec.To || !bytes.Equal(again.Snapshot, rec.Snapshot) {
			t.Fatalf("codec not canonical: %+v vs %+v", rec, again)
		}
	})
}
