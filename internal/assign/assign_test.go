package assign

import (
	"math"
	"testing"
	"testing/quick"

	"anurand/internal/rng"
)

func paperBins() []Bin {
	return []Bin{{0, 1}, {1, 3}, {2, 5}, {3, 7}, {4, 9}}
}

func TestGreedyAssignsEverything(t *testing.T) {
	items := []Item{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}
	bins := paperBins()
	a := Greedy(items, bins)
	if err := Validate(items, bins, a); err != nil {
		t.Fatal(err)
	}
	for i, b := range a {
		if b < 0 {
			t.Fatalf("item %d unassigned", i)
		}
	}
}

func TestGreedySkipsZeroCapacityBins(t *testing.T) {
	items := []Item{{0, 1}, {1, 2}}
	bins := []Bin{{0, 0}, {1, 5}}
	a := Greedy(items, bins)
	for i, b := range a {
		if b != 1 {
			t.Fatalf("item %d assigned to bin %d, want 1", i, b)
		}
	}
}

func TestGreedyNoUsableBins(t *testing.T) {
	items := []Item{{0, 1}}
	bins := []Bin{{0, 0}}
	a := Greedy(items, bins)
	if a[0] != -1 {
		t.Fatalf("item assigned to zero-capacity bin")
	}
	if err := Validate(items, bins, a); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyDeterministic(t *testing.T) {
	src := rng.New(4)
	items := make([]Item, 30)
	for i := range items {
		items[i] = Item{ID: i, Load: src.Float64() * 3}
	}
	bins := paperBins()
	a := Greedy(items, bins)
	b := Greedy(items, bins)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("greedy not deterministic at item %d", i)
		}
	}
}

func TestMeanLatencyEmptyAndOverload(t *testing.T) {
	bins := []Bin{{0, 1}}
	if got := MeanLatency(nil, bins, nil); got != 0 {
		t.Fatalf("empty MeanLatency = %g", got)
	}
	items := []Item{{0, 2}} // load 2 into capacity 1
	a := Assignment{0}
	if got := MeanLatency(items, bins, a); got < overloadPenalty {
		t.Fatalf("overloaded bin latency %g below penalty", got)
	}
}

func TestMeanLatencyPrefersBalanced(t *testing.T) {
	items := []Item{{0, 1}, {1, 1}}
	bins := []Bin{{0, 2}, {1, 2}}
	balanced := Assignment{0, 1}
	lopsided := Assignment{0, 0}
	if MeanLatency(items, bins, balanced) >= MeanLatency(items, bins, lopsided) {
		t.Fatal("balanced assignment not preferred")
	}
}

func TestLocalSearchImprovesBadSeed(t *testing.T) {
	items := []Item{{0, 1}, {1, 1}, {2, 1}, {3, 1}}
	bins := []Bin{{0, 2}, {1, 2}}
	bad := Assignment{0, 0, 0, 0} // everything on bin 0: overloaded
	before := MeanLatency(items, bins, bad)
	got, steps := LocalSearch(items, bins, bad, 10)
	after := MeanLatency(items, bins, got)
	if steps == 0 || after >= before {
		t.Fatalf("local search did not improve: %g -> %g in %d steps", before, after, steps)
	}
	loads := binLoads(items, bins, got)
	if loads[0] != 2 || loads[1] != 2 {
		t.Fatalf("final loads %v, want [2 2]", loads)
	}
}

func TestOptimizeBeatsProportionalSplit(t *testing.T) {
	// Many equal items across the paper's heterogeneous bins: the
	// latency-minimizing split is NOT proportional-to-capacity — it
	// shifts load toward fast servers and may idle the slowest one
	// (exactly the paper's observation that extremely weak servers sit
	// idle). The optimizer must do at least as well as the
	// proportional split and must not overload anyone.
	items := make([]Item, 100)
	for i := range items {
		items[i] = Item{ID: i, Load: 0.1}
	}
	bins := paperBins()
	a := Optimize(items, bins)
	if err := Validate(items, bins, a); err != nil {
		t.Fatal(err)
	}
	utils := Utilizations(items, bins, a)
	for b, u := range utils {
		if u >= 1 {
			t.Errorf("bin %d overloaded at utilization %.3f", b, u)
		}
	}
	// Build the proportional assignment for comparison.
	prop := make(Assignment, len(items))
	next, acc := 0, 0.0
	quota := []float64{0.4, 1.2, 2.0, 2.8, 3.6} // 10 total load, prop to capacity
	for i := range items {
		for next < len(bins)-1 && acc+items[i].Load > quota[next]+1e-9 {
			next++
			acc = 0
		}
		prop[i] = next
		acc += items[i].Load
	}
	if MeanLatency(items, bins, a) > MeanLatency(items, bins, prop)+1e-12 {
		t.Fatalf("optimizer (%.4f) worse than proportional split (%.4f)",
			MeanLatency(items, bins, a), MeanLatency(items, bins, prop))
	}
	// The fastest server must carry more load than the slowest.
	loads := binLoads(items, bins, a)
	if loads[4] <= loads[0] {
		t.Fatalf("fastest bin carries %.2f, slowest %.2f", loads[4], loads[0])
	}
}

func TestOptimizeHandlesSingleHugeItem(t *testing.T) {
	items := []Item{{0, 10}, {1, 0.1}, {2, 0.1}}
	bins := paperBins()
	a := Optimize(items, bins)
	if a[0] != 4 {
		t.Fatalf("huge item on bin %d, want the fastest bin 4", a[0])
	}
}

func TestValidateErrors(t *testing.T) {
	items := []Item{{0, 1}}
	bins := []Bin{{0, 0}, {1, 1}}
	if err := Validate(items, bins, Assignment{}); err == nil {
		t.Error("wrong-length assignment validated")
	}
	if err := Validate(items, bins, Assignment{5}); err == nil {
		t.Error("out-of-range bin validated")
	}
	if err := Validate(items, bins, Assignment{0}); err == nil {
		t.Error("zero-capacity bin assignment validated")
	}
	if err := Validate(items, bins, Assignment{1}); err != nil {
		t.Errorf("good assignment rejected: %v", err)
	}
}

func TestUtilizations(t *testing.T) {
	items := []Item{{0, 2}, {1, 3}}
	bins := []Bin{{0, 4}, {1, 0}}
	a := Assignment{0, 0}
	u := Utilizations(items, bins, a)
	if u[0] != 1.25 {
		t.Errorf("u[0] = %g, want 1.25", u[0])
	}
	if !math.IsNaN(u[1]) {
		t.Errorf("u[1] = %g, want NaN for idle zero-capacity bin", u[1])
	}
}

// fluidBound computes the true lower bound on MeanLatency if load were
// infinitely divisible: minimize sum(load_b/(c_b-load_b)) subject to
// sum(load_b)=L. The KKT conditions give the square-root water-filling
// rule load_b = max(0, c_b - sqrt(c_b/lambda)); lambda is found by
// bisection.
func fluidBound(total float64, bins []Bin) float64 {
	loadAt := func(lambda float64) float64 {
		var sum float64
		for _, b := range bins {
			l := b.Capacity - math.Sqrt(b.Capacity/lambda)
			if l > 0 {
				sum += l
			}
		}
		return sum
	}
	lo, hi := 1e-12, 1e12
	for i := 0; i < 200; i++ {
		mid := math.Sqrt(lo * hi)
		if loadAt(mid) < total {
			lo = mid
		} else {
			hi = mid
		}
	}
	lambda := math.Sqrt(lo * hi)
	var num float64
	for _, b := range bins {
		l := b.Capacity - math.Sqrt(b.Capacity/lambda)
		if l > 0 {
			num += l / (b.Capacity - l)
		}
	}
	return num / total
}

// TestOptimizeNearLowerBound compares the optimizer against the fluid
// (infinitely divisible) water-filling optimum: it can never beat it and
// should land close above it.
func TestOptimizeNearLowerBound(t *testing.T) {
	src := rng.New(7)
	items := make([]Item, 50)
	var total float64
	for i := range items {
		items[i] = Item{ID: i, Load: 0.05 + 0.3*src.Float64()}
		total += items[i].Load
	}
	bins := paperBins()
	if total >= 25 {
		t.Fatalf("test workload overloads the cluster (total=%g)", total)
	}
	bound := fluidBound(total, bins)
	a := Optimize(items, bins)
	got := MeanLatency(items, bins, a)
	if got < bound-1e-9 {
		t.Fatalf("optimizer beat the fluid lower bound: %g < %g (model bug)", got, bound)
	}
	if got > bound*1.5 {
		t.Fatalf("optimizer %g more than 50%% above fluid bound %g", got, bound)
	}
}

func TestOptimizePropertyFeasibleAndStable(t *testing.T) {
	prop := func(seed uint64, nRaw, kRaw uint8) bool {
		src := rng.New(seed)
		n := int(nRaw%40) + 1
		k := int(kRaw%6) + 1
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: i, Load: src.Float64()}
		}
		bins := make([]Bin, k)
		for b := range bins {
			bins[b] = Bin{ID: b, Capacity: 1 + src.Float64()*8}
		}
		a := Optimize(items, bins)
		if Validate(items, bins, a) != nil {
			return false
		}
		// Re-running local search must not find further improvement
		// (local optimum reached).
		before := MeanLatency(items, bins, a)
		_, steps := LocalSearch(items, bins, a, 5)
		after := MeanLatency(items, bins, a)
		return steps == 0 && math.Abs(before-after) < 1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOptimize50x5(b *testing.B) {
	src := rng.New(1)
	items := make([]Item, 50)
	for i := range items {
		items[i] = Item{ID: i, Load: 0.05 + src.Float64()*0.3}
	}
	bins := paperBins()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Optimize(items, bins)
	}
}
