// Package assign solves the load-to-server mapping problem the paper's
// dynamic-prescient and virtual-processor systems rely on: given items
// with known offered load (file sets or virtual processors) and bins
// with known capacity (server speeds), find an assignment that minimizes
// predicted average request latency.
//
// The paper describes prescient as "identifying the permutation of file
// sets onto servers that minimizes average latency" but does not name an
// algorithm; exhaustive search is infeasible even at 50 items x 5 bins.
// We use the classic construction for makespan-like objectives —
// longest-processing-time greedy seeded placement followed by
// steepest-descent local search over single-item moves and pairwise
// swaps — which for these problem sizes reaches the proportional split
// the paper's prescient curves display.
package assign

import (
	"fmt"
	"math"
	"sort"
)

// Item is a unit of assignable load (a file set or a virtual
// processor).
type Item struct {
	// ID is the caller's identifier, carried through untouched.
	ID int
	// Load is the offered load in unit-speed work seconds per second.
	Load float64
}

// Bin is an assignment target (a server).
type Bin struct {
	// ID is the caller's identifier.
	ID int
	// Capacity is the service capacity in unit-speed work seconds per
	// second (the paper's speed factors 1, 3, 5, 7, 9).
	Capacity float64
}

// Assignment maps item index -> bin index. A value of -1 means
// unassigned (only possible when there are no usable bins).
type Assignment []int

// overloadPenalty dominates the objective when a bin is driven past
// capacity, so the search always prefers feasible assignments.
const overloadPenalty = 1e9

// MeanLatency predicts the request-weighted average latency of an
// assignment using an M/M/1-style delay model: a bin loaded to rho of
// its capacity serves with latency proportional to 1/(capacity - load),
// and each bin contributes in proportion to the load it carries.
// Overloaded bins incur a large linear penalty instead of infinity so
// the search surface stays ordered.
func MeanLatency(items []Item, bins []Bin, a Assignment) float64 {
	loads := binLoads(items, bins, a)
	var num, den float64
	for b, load := range loads {
		if load == 0 {
			continue
		}
		den += load
		cap_ := bins[b].Capacity
		if load >= cap_ {
			num += load * (overloadPenalty * (1 + load - cap_))
			continue
		}
		num += load / (cap_ - load)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// binLoads sums assigned load per bin.
func binLoads(items []Item, bins []Bin, a Assignment) []float64 {
	loads := make([]float64, len(bins))
	for i, b := range a {
		if b >= 0 {
			loads[b] += items[i].Load
		}
	}
	return loads
}

// Greedy produces the LPT seed: items in descending load order, each
// placed in the bin that minimizes the resulting normalized load
// (load/capacity). Bins with zero capacity never receive items.
func Greedy(items []Item, bins []Bin) Assignment {
	a := make(Assignment, len(items))
	for i := range a {
		a[i] = -1
	}
	usable := false
	for _, b := range bins {
		if b.Capacity > 0 {
			usable = true
			break
		}
	}
	if !usable {
		return a
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		ix, iy := items[order[x]], items[order[y]]
		if ix.Load != iy.Load {
			return ix.Load > iy.Load
		}
		return order[x] < order[y] // deterministic tie-break
	})
	loads := make([]float64, len(bins))
	for _, i := range order {
		best, bestRho := -1, math.Inf(1)
		for b := range bins {
			if bins[b].Capacity <= 0 {
				continue
			}
			rho := (loads[b] + items[i].Load) / bins[b].Capacity
			if rho < bestRho {
				best, bestRho = b, rho
			}
		}
		a[i] = best
		loads[best] += items[i].Load
	}
	return a
}

// LocalSearch improves an assignment by steepest-descent over two
// neighbourhoods — moving one item to another bin and swapping the bins
// of two items — until no improving step exists or maxRounds passes
// complete. It returns the improved assignment (the input is modified in
// place) and the number of improving steps taken.
func LocalSearch(items []Item, bins []Bin, a Assignment, maxRounds int) (Assignment, int) {
	if len(items) == 0 || len(bins) == 0 {
		return a, 0
	}
	steps := 0
	cur := MeanLatency(items, bins, a)
	for round := 0; round < maxRounds; round++ {
		improved := false
		// Single-item moves.
		for i := range items {
			if a[i] < 0 {
				continue
			}
			home := a[i]
			for b := range bins {
				if b == home || bins[b].Capacity <= 0 {
					continue
				}
				a[i] = b
				if v := MeanLatency(items, bins, a); v < cur-1e-15 {
					cur = v
					home = b
					improved = true
					steps++
				} else {
					a[i] = home
				}
			}
		}
		// Pairwise swaps.
		for i := 0; i < len(items); i++ {
			for j := i + 1; j < len(items); j++ {
				if a[i] < 0 || a[j] < 0 || a[i] == a[j] {
					continue
				}
				a[i], a[j] = a[j], a[i]
				if v := MeanLatency(items, bins, a); v < cur-1e-15 {
					cur = v
					improved = true
					steps++
				} else {
					a[i], a[j] = a[j], a[i]
				}
			}
		}
		if !improved {
			break
		}
	}
	return a, steps
}

// Optimize runs Greedy then LocalSearch with a round budget suited to
// the paper's problem sizes (tens of items, a handful of bins).
func Optimize(items []Item, bins []Bin) Assignment {
	a := Greedy(items, bins)
	a, _ = LocalSearch(items, bins, a, 20)
	return a
}

// Validate checks an assignment's shape: one entry per item, bin
// indices in range, and no item assigned to a zero-capacity bin.
func Validate(items []Item, bins []Bin, a Assignment) error {
	if len(a) != len(items) {
		return fmt.Errorf("assign: %d assignments for %d items", len(a), len(items))
	}
	for i, b := range a {
		if b == -1 {
			continue
		}
		if b < 0 || b >= len(bins) {
			return fmt.Errorf("assign: item %d assigned to bin %d of %d", i, b, len(bins))
		}
		if bins[b].Capacity <= 0 {
			return fmt.Errorf("assign: item %d assigned to zero-capacity bin %d", i, b)
		}
	}
	return nil
}

// Utilizations returns per-bin load/capacity ratios (NaN for
// zero-capacity bins carrying no load, +Inf if they carry load).
func Utilizations(items []Item, bins []Bin, a Assignment) []float64 {
	loads := binLoads(items, bins, a)
	out := make([]float64, len(bins))
	for b := range bins {
		switch {
		case bins[b].Capacity > 0:
			out[b] = loads[b] / bins[b].Capacity
		case loads[b] > 0:
			out[b] = math.Inf(1)
		default:
			out[b] = math.NaN()
		}
	}
	return out
}
