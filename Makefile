# Common development targets. Everything is pure-stdlib Go; no external
# tools are required beyond the Go toolchain.

GO ?= go
FUZZTIME ?= 30s

.PHONY: all check build test race bench bench-lookup bench-figs bench-net bench-smoke bench-gate bench-gate-allocs bench-diff bench-scaling fuzz-smoke soak-migrate soak-scale soak-scale-short lint vet fmt figures examples clean

all: check

# The default gate: compile, unit tests, static analysis, the race
# detector over the concurrent code (including the crash-restart chaos
# soak in internal/cluster and the RCU stress test in the root
# package), a timeboxed run of every fuzz target, and a smoke run of
# every benchmark so a broken benchmark can't land.
check: build test lint race fuzz-smoke bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race . ./internal/...

# Record benchmark baselines: the lookup/hash micro-benchmarks into
# BENCH_lookup.json and the paper-figure benchmarks into
# BENCH_figs.json. Intermediate text files (not pipes) so a go test
# failure stops the recipe under plain POSIX sh.
bench: bench-lookup bench-figs bench-net

bench-lookup:
	$(GO) test -run='^$$' -bench='Balancer|Hash|Lookup|SetWeights' -benchmem . ./internal/... > BENCH_lookup.txt
	$(GO) run ./cmd/benchjson -o BENCH_lookup.json < BENCH_lookup.txt
	rm -f BENCH_lookup.txt

bench-figs:
	$(GO) test -run='^$$' -bench='Fig' -benchtime=1x -benchmem . > BENCH_figs.txt
	$(GO) run ./cmd/benchjson -o BENCH_figs.json < BENCH_figs.txt
	rm -f BENCH_figs.txt

# Record the wire-path baselines (frame encode/decode, end-to-end TCP
# heartbeat, memnet broadcast fan-out) into BENCH_net.json. Every entry
# is 0 allocs/op by design; the alloc gate below holds them there.
bench-net:
	$(GO) test -run='^$$' -bench='Frame|Heartbeat|Broadcast' -benchmem ./internal/cluster > BENCH_net.txt
	$(GO) run ./cmd/benchjson -o BENCH_net.json < BENCH_net.txt
	rm -f BENCH_net.txt

# Cheap benchmark liveness check for the default gate: 10 iterations of
# everything, output discarded — catches benchmarks that panic or fail,
# not performance changes.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=10x ./... > /dev/null

# A fresh run of the gated micro-benchmarks, shared by the gate and
# diff targets below. Real file targets (not .PHONY) so one make
# invocation — or consecutive CI steps in the same job — runs the
# benchmarks once and reuses the recording.
BENCH_current.txt:
	$(GO) test -run='^$$' -bench='Balancer|Hash|Lookup|SetWeights' -benchmem . ./internal/... > $@

BENCH_current.json: BENCH_current.txt
	$(GO) run ./cmd/benchjson -o $@ < BENCH_current.txt

# A fresh single-iteration recording of the paper-figure benchmarks,
# shared by the alloc gate and the figure diff. The figure suite runs
# its cells sequentially (see newQuickSuite), so its allocs/op are
# exact.
BENCH_figs_current.txt:
	$(GO) test -run='^$$' -bench='Fig' -benchtime=1x -benchmem . > $@

BENCH_figs_current.json: BENCH_figs_current.txt
	$(GO) run ./cmd/benchjson -o $@ < BENCH_figs_current.txt

# A fresh run of the wire-path benchmarks for the alloc gate.
BENCH_net_current.txt:
	$(GO) test -run='^$$' -bench='Frame|Heartbeat|Broadcast' -benchmem ./internal/cluster > $@

BENCH_net_current.json: BENCH_net_current.txt
	$(GO) run ./cmd/benchjson -o $@ < BENCH_net_current.txt

# Compare a fresh micro-benchmark run against the committed baseline
# and fail on >30% ns/op regressions. Meaningful on hardware comparable
# to the machine that recorded BENCH_lookup.json.
bench-gate: BENCH_current.txt
	$(GO) run ./cmd/benchjson -gate BENCH_lookup.json < BENCH_current.txt > /dev/null

# Fail on ANY allocs/op increase, in both the micro-benchmarks and the
# whole-figure suite. Allocation counts are exact and
# machine-independent — the runtime counts them, the clock does not
# jitter them — so unlike bench-gate this is a hard guarantee on any
# hardware, including a regression from a 0-alloc baseline. Gating the
# figure suite pins the end-to-end simulator: an accidental
# closure/boxing reintroduction anywhere on the hot path shows up as
# hundreds of thousands of allocs in these totals.
bench-gate-allocs: BENCH_current.txt BENCH_figs_current.txt BENCH_net_current.txt
	$(GO) run ./cmd/benchjson -gate BENCH_lookup.json -metric allocs/op -tolerance 0 < BENCH_current.txt > /dev/null
	$(GO) run ./cmd/benchjson -gate BENCH_figs.json -metric allocs/op -tolerance 0 < BENCH_figs_current.txt > /dev/null
	$(GO) run ./cmd/benchjson -gate BENCH_net.json -metric allocs/op -tolerance 0 < BENCH_net_current.txt > /dev/null

# Full noise-aware diff of the fresh runs against the committed
# baselines: every shared metric, per-metric tolerances and floors,
# zero-baseline and added/removed handling, rendered as
# benchdiff-report.md / benchdiff-figs-report.md (CI attaches both to
# the job summary).
bench-diff: BENCH_current.json BENCH_figs_current.json
	$(GO) run ./cmd/benchdiff -o benchdiff-report.md BENCH_lookup.json BENCH_current.json
	$(GO) run ./cmd/benchdiff -o benchdiff-figs-report.md BENCH_figs.json BENCH_figs_current.json

# Record the parallel figure runner's scaling curve (workers 1,2,4,...
# up to GOMAXPROCS) into BENCH_scaling.json.
bench-scaling:
	$(GO) run ./cmd/paperfigs -scaling -scaling-out BENCH_scaling.json

# Timeboxed coverage-guided fuzzing of every fuzz target (FUZZTIME per
# target; go only allows one -fuzz pattern per package invocation).
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzDecode$$' -fuzztime=$(FUZZTIME) ./internal/anu
	$(GO) test -run='^$$' -fuzz='^FuzzRead$$' -fuzztime=$(FUZZTIME) ./internal/workload
	$(GO) test -run='^$$' -fuzz='^FuzzJournalRecover$$' -fuzztime=$(FUZZTIME) ./internal/journal
	$(GO) test -run='^$$' -fuzz='^FuzzReadFrame$$' -fuzztime=$(FUZZTIME) ./internal/cluster
	$(GO) test -run='^$$' -fuzz='^FuzzMigrationRecord$$' -fuzztime=$(FUZZTIME) ./internal/migrate
	$(GO) test -run='^$$' -fuzz='^FuzzWeightedSnapshot$$' -fuzztime=$(FUZZTIME) ./internal/placement

# The live-migration chaos soak under the race detector: five nodes on
# a lossy network with chaos journals, faults injected in every phase
# of the migration state machine (leader killed in Proposed, follower
# crash-restarted with a torn journal tail in DualTag, flipped witness
# crash-restarted in Committed, partition mid-rollback), with lookup
# hammers asserting the zero-downtime contract throughout.
soak-migrate:
	$(GO) test -race -run='^TestMigrationChaosSoak$$' -count=1 -v ./internal/cluster

# The scale soak: every placement strategy baked on 50/100/200-node
# clusters over the pooled memnet fabric with light chaos, a coherence
# monitor holding one-placement-per-round throughout. The short variant
# (CI) keeps the 50-node cells and adds the race detector.
soak-scale:
	$(GO) test -run='^TestSoakScale$$' -count=1 -timeout=20m -v ./internal/cluster

soak-scale-short:
	$(GO) test -race -short -run='^TestSoakScale$$' -count=1 -timeout=15m -v ./internal/cluster

# Static analysis: vet always; staticcheck when installed (the repo
# stays pure-stdlib, so the tool is optional and skipped gracefully).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate every paper figure at full scale (~1 minute).
figures:
	$(GO) run ./cmd/paperfigs

# Run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/failover
	$(GO) run ./examples/heterogeneous
	$(GO) run ./examples/vptradeoff
	$(GO) run ./examples/closedloop
	$(GO) run ./examples/tcpcluster

clean:
	$(GO) clean -testcache
	rm -f BENCH_lookup.txt BENCH_figs.txt BENCH_net.txt BENCH_gate.txt
	rm -f BENCH_current.txt BENCH_current.json benchdiff-report.md
	rm -f BENCH_figs_current.txt BENCH_figs_current.json benchdiff-figs-report.md
	rm -f BENCH_net_current.txt BENCH_net_current.json
