# Common development targets. Everything is pure-stdlib Go; no external
# tools are required beyond the Go toolchain.

GO ?= go

.PHONY: all check build test race bench vet fmt figures examples clean

all: check

# The default gate: compile, unit tests, static analysis, and the
# race detector over the concurrent internals (including the chaos
# soak in internal/cluster).
check: build test vet race

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/...

bench:
	$(GO) test -bench=. -benchmem ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Regenerate every paper figure at full scale (~1 minute).
figures:
	$(GO) run ./cmd/paperfigs

# Run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/failover
	$(GO) run ./examples/heterogeneous
	$(GO) run ./examples/vptradeoff
	$(GO) run ./examples/closedloop
	$(GO) run ./examples/tcpcluster

clean:
	$(GO) clean -testcache
