package anurand

import (
	"fmt"
	"math"
	"sync"
	"testing"
)

func newBalancer(t *testing.T, k int) *Balancer {
	t.Helper()
	ids := make([]ServerID, k)
	for i := range ids {
		ids[i] = ServerID(i)
	}
	b, err := New(ids)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewAndLookup(t *testing.T) {
	b := newBalancer(t, 5)
	if b.K() != 5 {
		t.Fatalf("K = %d", b.K())
	}
	if b.Partitions() != 16 {
		t.Fatalf("Partitions = %d, want 16 for k=5", b.Partitions())
	}
	counts := map[ServerID]int{}
	for i := 0; i < 5000; i++ {
		id, ok := b.Lookup(fmt.Sprintf("key-%d", i))
		if !ok {
			t.Fatal("lookup failed on a healthy balancer")
		}
		counts[id]++
	}
	for _, id := range b.Servers() {
		if counts[id] == 0 {
			t.Errorf("server %d received no keys", id)
		}
	}
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("New with no servers accepted")
	}
	if _, err := New([]ServerID{1, 1}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if _, err := NewWithOptions([]ServerID{0}, Options{Tuning: Tuning{Gamma: -1}}); err == nil {
		t.Error("invalid tuning accepted")
	}
}

func TestTuneShiftsShares(t *testing.T) {
	b := newBalancer(t, 2)
	for i := 0; i < 30; i++ {
		if _, err := b.Tune([]Report{
			{Server: 0, Requests: 100, LatencySeconds: 5},
			{Server: 1, Requests: 100, LatencySeconds: 0.5},
		}); err != nil {
			t.Fatal(err)
		}
	}
	shares := b.Shares()
	if shares[1] <= shares[0] {
		t.Fatalf("fast server share %.3f not above slow server's %.3f", shares[1], shares[0])
	}
	sum := shares[0] + shares[1]
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %g", sum)
	}
}

func TestFailRecoverCycle(t *testing.T) {
	b := newBalancer(t, 3)
	if err := b.Fail(1); err != nil {
		t.Fatal(err)
	}
	if s := b.Shares()[1]; s != 0 {
		t.Fatalf("failed server share %g", s)
	}
	for i := 0; i < 1000; i++ {
		if id, ok := b.Lookup(fmt.Sprintf("k%d", i)); !ok || id == 1 {
			t.Fatalf("lookup routed to failed server (id=%d ok=%v)", id, ok)
		}
	}
	if err := b.Recover(1); err != nil {
		t.Fatal(err)
	}
	if s := b.Shares()[1]; s == 0 {
		t.Fatal("recovered server got no share")
	}
}

func TestAddRemoveServer(t *testing.T) {
	b := newBalancer(t, 4)
	if err := b.AddServer(4); err != nil {
		t.Fatal(err)
	}
	if b.K() != 5 || b.Partitions() != 16 {
		t.Fatalf("after add: K=%d partitions=%d", b.K(), b.Partitions())
	}
	if err := b.AddServer(4); err == nil {
		t.Fatal("duplicate add accepted")
	}
	if err := b.RemoveServer(2); err != nil {
		t.Fatal(err)
	}
	if b.K() != 4 {
		t.Fatalf("after remove: K=%d", b.K())
	}
	for i := 0; i < 500; i++ {
		if id, _ := b.Lookup(fmt.Sprintf("k%d", i)); id == 2 {
			t.Fatal("lookup routed to removed server")
		}
	}
}

func TestSnapshotRestore(t *testing.T) {
	b := newBalancer(t, 5)
	if _, err := b.Tune([]Report{
		{Server: 0, Requests: 10, LatencySeconds: 9},
		{Server: 4, Requests: 10, LatencySeconds: 0.1},
	}); err != nil {
		t.Fatal(err)
	}
	snap := b.Snapshot()
	if len(snap) != b.SharedStateSize() {
		t.Fatalf("SharedStateSize %d != len(Snapshot) %d", b.SharedStateSize(), len(snap))
	}
	c, err := Restore(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("fileset/%d", i)
		a, _ := b.Lookup(key)
		d, _ := c.Lookup(key)
		if a != d {
			t.Fatalf("restored balancer disagrees on %q: %d vs %d", key, a, d)
		}
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore([]byte("junk"), Options{}); err == nil {
		t.Fatal("Restore accepted garbage")
	}
}

func TestLookupProbes(t *testing.T) {
	b := newBalancer(t, 5)
	total, n := 0, 2000
	for i := 0; i < n; i++ {
		_, probes, ok := b.LookupProbes(fmt.Sprintf("p%d", i))
		if !ok || probes < 1 {
			t.Fatal("bad probe count")
		}
		total += probes
	}
	if mean := float64(total) / float64(n); mean < 1.5 || mean > 2.5 {
		t.Fatalf("mean probes %.2f, want ~2", mean)
	}
}

func TestDefaultTuningRoundTrips(t *testing.T) {
	cfg := DefaultTuning().toConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("DefaultTuning invalid: %v", err)
	}
	// Zero-value Tuning resolves to defaults.
	if got := (Tuning{}).toConfig(); got != cfg {
		t.Fatalf("zero Tuning != defaults: %+v vs %+v", got, cfg)
	}
}

func TestConcurrentLookupsDuringTuning(t *testing.T) {
	b := newBalancer(t, 8)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ok := b.Lookup(fmt.Sprintf("g%d-%d", g, i)); !ok {
					t.Error("lookup failed mid-tune")
					return
				}
				i++
			}
		}(g)
	}
	for round := 0; round < 200; round++ {
		reports := make([]Report, 0, 8)
		for _, id := range b.Servers() {
			reports = append(reports, Report{
				Server:         id,
				Requests:       100,
				LatencySeconds: 1 + float64(id)*0.3,
			})
		}
		if _, err := b.Tune(reports); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestAllFailedLookupReturnsFalse(t *testing.T) {
	b := newBalancer(t, 2)
	if err := b.Fail(0); err != nil {
		t.Fatal(err)
	}
	if err := b.Fail(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Lookup("anything"); ok {
		t.Fatal("lookup succeeded with every server failed")
	}
}

func TestAdvisoriesSurfaceThroughFacade(t *testing.T) {
	b, err := NewWithOptions([]ServerID{0, 1}, Options{Tuning: Tuning{MinWeight: 0.01, Smoothing: 0.001}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := b.Tune([]Report{
			{Server: 0, Requests: 50, LatencySeconds: 500},
			{Server: 1, Requests: 500, LatencySeconds: 1},
		}); err != nil {
			t.Fatal(err)
		}
	}
	advs := b.Advisories()
	if len(advs) != 1 || advs[0].Server != 0 {
		t.Fatalf("advisories = %+v, want server 0", advs)
	}
}

func TestRenderThroughFacade(t *testing.T) {
	b := newBalancer(t, 3)
	out := b.Render(40)
	if len(out) == 0 || out[0] != '[' {
		t.Fatalf("Render output %q", out)
	}
}
