package anurand

// Concurrency stress coverage for the RCU lookup data plane: readers
// hammer the lock-free paths while writers churn the placement. Run
// under the race detector (`make race`), this is the proof that
// snapshot publication is sound — every lookup observes a complete,
// invariant-satisfying placement no matter how the mutators interleave.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentReadersUnderMutation asserts that with at least one
// server always live, every concurrent Lookup resolves to a member id,
// batches resolve fully against one snapshot, shares stay normalized,
// and snapshots taken mid-churn decode cleanly.
func TestConcurrentReadersUnderMutation(t *testing.T) {
	const (
		baseServers = 8
		addedMax    = 4 // ids baseServers..baseServers+addedMax-1 are commissioned mid-run
		readers     = 8
		writerOps   = 300
	)
	ids := make([]ServerID, baseServers)
	for i := range ids {
		ids[i] = ServerID(i)
	}
	b, err := New(ids)
	if err != nil {
		t.Fatal(err)
	}

	member := func(id ServerID) bool { return id >= 0 && id < baseServers+addedMax }

	var stop atomic.Bool
	errs := make(chan error, readers+3)
	var readWG, writeWG sync.WaitGroup

	// Readers: single lookups, probe-counted lookups, batches, shares,
	// snapshots. They run until the writers finish.
	for g := 0; g < readers; g++ {
		readWG.Add(1)
		go func(g int) {
			defer readWG.Done()
			keys := make([]string, 16)
			owners := make([]ServerID, len(keys))
			for i := range keys {
				keys[i] = fmt.Sprintf("reader-%d/fileset-%04d", g, i)
			}
			for i := 0; !stop.Load(); i++ {
				key := keys[i%len(keys)]
				owner, ok := b.Lookup(key)
				if !ok {
					errs <- fmt.Errorf("reader %d: lookup failed with live servers", g)
					return
				}
				if !member(owner) {
					errs <- fmt.Errorf("reader %d: lookup returned non-member %d", g, owner)
					return
				}
				if owner, probes, ok := b.LookupProbes(key); !ok || probes < 1 || !member(owner) {
					errs <- fmt.Errorf("reader %d: LookupProbes = (%d, %d, %v)", g, owner, probes, ok)
					return
				}
				if n := b.LookupBatch(keys, owners); n != len(keys) {
					errs <- fmt.Errorf("reader %d: batch resolved %d/%d keys", g, n, len(keys))
					return
				}
				for _, o := range owners {
					if !member(o) {
						errs <- fmt.Errorf("reader %d: batch returned non-member %d", g, o)
						return
					}
				}
				if i%8 == 0 {
					var sum float64
					for id, s := range b.Shares() {
						if s < 0 || s > 1 {
							errs <- fmt.Errorf("reader %d: share of %d is %g", g, id, s)
							return
						}
						sum += s
					}
					if sum < 0.999 || sum > 1.001 {
						errs <- fmt.Errorf("reader %d: shares sum to %g", g, sum)
						return
					}
				}
				if i%16 == 0 {
					if _, err := Restore(b.Snapshot(), Options{}); err != nil {
						errs <- fmt.Errorf("reader %d: snapshot does not decode: %v", g, err)
						return
					}
				}
			}
		}(g)
	}

	// Writer 1: tuning rounds with shifting latencies.
	writeWG.Add(1)
	go func() {
		defer writeWG.Done()
		for i := 0; i < writerOps; i++ {
			reports := make([]Report, baseServers)
			for j := range reports {
				reports[j] = Report{
					Server:         ServerID(j),
					Requests:       100 + uint64(i%7)*10,
					LatencySeconds: 0.5 + float64((i+j)%9)*0.25,
				}
			}
			if _, err := b.Tune(reports); err != nil {
				errs <- fmt.Errorf("tune: %v", err)
				return
			}
		}
	}()

	// Writer 2: fail/recover cycles over servers 1..3, at most one down
	// at a time so lookups always have live owners.
	writeWG.Add(1)
	go func() {
		defer writeWG.Done()
		for i := 0; i < writerOps; i++ {
			id := ServerID(1 + i%3)
			if err := b.Fail(id); err != nil {
				errs <- fmt.Errorf("fail %d: %v", id, err)
				return
			}
			if err := b.Recover(id); err != nil {
				errs <- fmt.Errorf("recover %d: %v", id, err)
				return
			}
		}
	}()

	// Writer 3: commission new servers mid-run (forces repartitioning
	// while readers are in flight).
	writeWG.Add(1)
	go func() {
		defer writeWG.Done()
		for i := 0; i < addedMax; i++ {
			if err := b.AddServer(ServerID(baseServers + i)); err != nil {
				errs <- fmt.Errorf("add %d: %v", baseServers+i, err)
				return
			}
		}
	}()

	// Wait for the writers, then release the readers and collect any
	// reported failures.
	writeWG.Wait()
	stop.Store(true)
	readWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The churned balancer must still satisfy every decode-side
	// invariant (Decode runs CheckInvariants).
	if _, err := Restore(b.Snapshot(), Options{}); err != nil {
		t.Fatalf("final snapshot invalid: %v", err)
	}
	if got := b.K(); got != baseServers+addedMax {
		t.Fatalf("K = %d after commissioning, want %d", got, baseServers+addedMax)
	}
}
