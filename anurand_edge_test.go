package anurand

import (
	"strings"
	"testing"
)

// Satellite coverage: Tuning/Options validation and Balancer edge cases
// (empty/short LookupBatch, removing the last live server, truncated
// Restore snapshots), plus the strategy selection surface.

func TestTuningValidateRejectsNegatives(t *testing.T) {
	cases := []struct {
		field string
		t     Tuning
	}{
		{"Gamma", Tuning{Gamma: -0.2}},
		{"MaxStep", Tuning{MaxStep: -1.4}},
		{"MaxShrink", Tuning{MaxShrink: -2}},
		{"DeadBand", Tuning{DeadBand: -0.05}},
		{"MinWeight", Tuning{MinWeight: -0.001}},
		{"Smoothing", Tuning{Smoothing: -0.3}},
	}
	for _, c := range cases {
		_, err := NewWithOptions([]ServerID{0, 1}, Options{Tuning: c.t})
		if err == nil {
			t.Errorf("negative %s accepted by NewWithOptions", c.field)
			continue
		}
		if !strings.Contains(err.Error(), "Tuning."+c.field) {
			t.Errorf("negative %s error %q does not name the field", c.field, err)
		}
		if !strings.Contains(err.Error(), "default") {
			t.Errorf("negative %s error %q does not mention the zero-means-default rule", c.field, err)
		}
		// Restore validates the same way, before touching the snapshot.
		good, err2 := New([]ServerID{0, 1})
		if err2 != nil {
			t.Fatal(err2)
		}
		if _, err2 = Restore(good.Snapshot(), Options{Tuning: c.t}); err2 == nil {
			t.Errorf("negative %s accepted by Restore", c.field)
		}
	}
}

func TestLookupBatchEmptyKeys(t *testing.T) {
	b, err := New([]ServerID{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.LookupBatch(nil, nil); got != 0 {
		t.Fatalf("LookupBatch(nil, nil) = %d", got)
	}
	// Extra owner capacity is fine and untouched slots stay as-is.
	owners := []ServerID{42, 42, 42}
	if got := b.LookupBatch([]string{"k"}, owners); got != 1 {
		t.Fatalf("LookupBatch resolved %d of 1", got)
	}
	if owners[1] != 42 || owners[2] != 42 {
		t.Fatalf("LookupBatch wrote past the keys: %v", owners)
	}
}

func TestLookupBatchShortOwnersPanics(t *testing.T) {
	b, err := New([]ServerID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LookupBatch with short owners did not panic")
		}
	}()
	b.LookupBatch([]string{"a", "b"}, make([]ServerID, 1))
}

func TestRemoveLastLiveServer(t *testing.T) {
	b, err := New([]ServerID{7})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.RemoveServer(7); err != nil {
		t.Fatalf("removing the last server: %v", err)
	}
	if got := b.K(); got != 0 {
		t.Fatalf("K = %d after removing the only server", got)
	}
	if _, ok := b.Lookup("orphan"); ok {
		t.Fatal("Lookup resolved against an empty cluster")
	}
	owners := make([]ServerID, 2)
	if got := b.LookupBatch([]string{"a", "b"}, owners); got != 0 {
		t.Fatalf("LookupBatch resolved %d keys against an empty cluster", got)
	}
	for i, o := range owners {
		if o != NoOwner {
			t.Fatalf("owners[%d] = %d, want NoOwner", i, o)
		}
	}
	// The chord ring refuses instead: a ring cannot exist with no nodes.
	c, err := NewWithOptions([]ServerID{3}, Options{Strategy: "chord"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveServer(3); err == nil {
		t.Fatal("chord strategy removed its last node")
	}
	// A failed mutation publishes nothing: the member is still there.
	if got := c.K(); got != 1 {
		t.Fatalf("failed RemoveServer changed K to %d", got)
	}
}

func TestRestoreTruncatedSnapshot(t *testing.T) {
	for _, strategy := range []string{"", "chord-bounded"} {
		b, err := NewWithOptions([]ServerID{0, 1, 2, 3}, Options{Strategy: strategy})
		if err != nil {
			t.Fatal(err)
		}
		snap := b.Snapshot()
		for _, cut := range []int{0, 1, 4, len(snap) / 2, len(snap) - 1} {
			if _, err := Restore(snap[:cut], Options{}); err == nil {
				t.Errorf("strategy %q: truncated snapshot of %d/%d bytes restored", strategy, cut, len(snap))
			}
		}
		if _, err := Restore(snap, Options{}); err != nil {
			t.Errorf("strategy %q: intact snapshot rejected: %v", strategy, err)
		}
	}
}

func TestBalancerStrategySelection(t *testing.T) {
	b, err := NewWithOptions([]ServerID{0, 1, 2}, Options{Strategy: "chord-bounded", LoadBound: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Strategy(); got != "chord-bounded" {
		t.Fatalf("Strategy() = %q", got)
	}
	// Non-ANU strategies have no interval machinery but keep the full
	// lookup/tune/snapshot surface.
	if b.Partitions() != 0 || b.Render(10) != "" || b.Advisories() != nil {
		t.Fatal("chord strategy leaked ANU-only surface")
	}
	if _, ok := b.Lookup("key"); !ok {
		t.Fatal("chord lookup failed")
	}
	if changed, err := b.Tune([]Report{
		{Server: 0, Requests: 9000, LatencySeconds: 1},
		{Server: 1, Requests: 100, LatencySeconds: 1},
		{Server: 2, Requests: 100, LatencySeconds: 1},
	}); err != nil || !changed {
		t.Fatalf("Tune = (%v, %v)", changed, err)
	}
	// Snapshots round-trip with the tag; restoring under a mismatched
	// strategy assertion fails.
	r, err := Restore(b.Snapshot(), Options{Strategy: "chord-bounded"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Strategy() != "chord-bounded" {
		t.Fatalf("restored strategy %q", r.Strategy())
	}
	if _, err := Restore(b.Snapshot(), Options{Strategy: "anu"}); err == nil {
		t.Fatal("chord snapshot restored under an ANU assertion")
	}
	// Unknown strategy names error up front.
	if _, err := NewWithOptions([]ServerID{0}, Options{Strategy: "bogus"}); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	// The registry surface lists the built-ins.
	names := Strategies()
	for _, want := range []string{"anu", "chord", "chord-bounded"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("Strategies() = %v missing %q", names, want)
		}
	}
}
